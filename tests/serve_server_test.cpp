// Tests for the fault-tolerant multi-tenant GemmServer: request
// lifecycle (every submission ends in exactly one terminal status),
// admission control and load shedding, deadline propagation, retry,
// per-tenant quarantine isolation, shared pack-cache coalescing, and
// shutdown semantics. Concurrency-sensitive (tsan-labeled).
#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <complex>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "gemm/matrix.hpp"
#include "gemm/tiled_driver.hpp"
#include "serve/server.hpp"

namespace m3xu::serve {
namespace {

using gemm::Matrix;

std::uint32_t bits32(float v) { return std::bit_cast<std::uint32_t>(v); }

bool bitwise_equal(const Matrix<float>& x, const Matrix<float>& y) {
  for (int i = 0; i < x.rows(); ++i) {
    for (int j = 0; j < x.cols(); ++j) {
      if (bits32(x(i, j)) != bits32(y(i, j))) return false;
    }
  }
  return true;
}

struct Problem {
  Matrix<float> a, b, c;
};

Problem make(int m, int n, int k, std::uint64_t seed) {
  Problem p{Matrix<float>(m, k), Matrix<float>(k, n), Matrix<float>(m, n)};
  Rng rng(seed);
  fill_random(p.a, rng);
  fill_random(p.b, rng);
  fill_random(p.c, rng);
  return p;
}

/// Small-tile config so modest matrices exercise a multi-tile grid.
ServerConfig base_config() {
  ServerConfig cfg;
  cfg.executors = 2;
  cfg.tile = gemm::TileConfig{32, 32, 32, 16, 16};
  cfg.abft.enable = true;
  return cfg;
}

/// Spins until `req` leaves kQueued (the executor picked it up) or the
/// timeout expires.
bool wait_running(const RequestHandle& req, int timeout_ms = 10'000) {
  const auto t0 = std::chrono::steady_clock::now();
  while (req->status() == RequestStatus::kQueued) {
    if (std::chrono::steady_clock::now() - t0 >
        std::chrono::milliseconds(timeout_ms)) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(GemmServer, SgemmRequestCompletesOkBitIdenticalToDirectRun) {
  const Problem p = make(64, 48, 96, 1);
  const ServerConfig cfg = base_config();
  const core::M3xuEngine direct_engine{cfg.engine};
  Matrix<float> ref = p.c;
  gemm::tiled_sgemm(direct_engine, cfg.tile, p.a, p.b, ref);

  GemmServer server(cfg);
  const RequestHandle req = server.submit_sgemm(p.a, p.b, p.c);
  req->wait();
  ASSERT_EQ(req->status(), RequestStatus::kOk) << req->error();
  EXPECT_EQ(req->attempts(), 1);
  EXPECT_TRUE(bitwise_equal(req->result_f32(), ref));
  EXPECT_EQ(req->stats().recovery.retries, 0);
}

TEST(GemmServer, CgemmRequestCompletesOk) {
  using C = std::complex<float>;
  Matrix<C> a(32, 32), b(32, 32), c0(32, 32);
  Rng rng(2);
  fill_random(a, rng);
  fill_random(b, rng);
  fill_random(c0, rng);
  const ServerConfig cfg = base_config();
  const core::M3xuEngine direct_engine{cfg.engine};
  Matrix<C> ref = c0;
  gemm::tiled_cgemm(direct_engine, cfg.tile, a, b, ref);

  GemmServer server(cfg);
  const RequestHandle req = server.submit_cgemm(a, b, c0);
  req->wait();
  ASSERT_EQ(req->status(), RequestStatus::kOk) << req->error();
  const Matrix<C>& out = req->result_c64();
  for (int i = 0; i < 32; ++i) {
    for (int j = 0; j < 32; ++j) {
      ASSERT_EQ(bits32(out(i, j).real()), bits32(ref(i, j).real()));
      ASSERT_EQ(bits32(out(i, j).imag()), bits32(ref(i, j).imag()));
    }
  }
}

TEST(GemmServer, InvalidShapesResolveFailedAtSubmission) {
  GemmServer server(base_config());
  const RequestHandle req = server.submit_sgemm(
      Matrix<float>(8, 4), Matrix<float>(5, 8), Matrix<float>(8, 8));
  // Already terminal: no need to wait.
  EXPECT_EQ(req->status(), RequestStatus::kFailed);
  EXPECT_NE(req->error().find("invalid shapes"), std::string::npos);
}

TEST(GemmServer, ConcurrentTenantsAllReachOkWithCorrectResults) {
  const ServerConfig cfg = [] {
    ServerConfig c = base_config();
    c.executors = 3;
    c.queue_capacity = 256;
    return c;
  }();
  const core::M3xuEngine direct_engine{cfg.engine};
  constexpr int kTenants = 4;
  constexpr int kPerTenant = 3;
  std::vector<Problem> problems;
  std::vector<Matrix<float>> refs;
  for (int t = 0; t < kTenants; ++t) {
    problems.push_back(make(48, 48, 64, 100 + static_cast<std::uint64_t>(t)));
    Matrix<float> ref = problems.back().c;
    gemm::tiled_sgemm(direct_engine, cfg.tile, problems.back().a,
                      problems.back().b, ref);
    refs.push_back(std::move(ref));
  }

  GemmServer server(cfg);
  std::vector<std::vector<RequestHandle>> handles(kTenants);
  std::vector<std::thread> tenants;
  for (int t = 0; t < kTenants; ++t) {
    tenants.emplace_back([&, t] {
      for (int r = 0; r < kPerTenant; ++r) {
        RequestOptions opts;
        opts.tenant = "tenant-" + std::to_string(t);
        handles[t].push_back(server.submit_sgemm(
            problems[t].a, problems[t].b, problems[t].c, opts));
      }
    });
  }
  for (auto& th : tenants) th.join();
  for (int t = 0; t < kTenants; ++t) {
    for (const RequestHandle& req : handles[t]) {
      req->wait();
      ASSERT_EQ(req->status(), RequestStatus::kOk) << req->error();
      // Isolation: every tenant gets its own bits, never a neighbor's.
      ASSERT_TRUE(bitwise_equal(req->result_f32(), refs[t]));
    }
  }
}

/// Fixture pattern for the shed/cancel tests: a single-executor server
/// whose executor is pinned by a deliberately large request, so queue
/// admission behavior is deterministic.
class BlockedServerTest : public ::testing::Test {
 protected:
  void StartBlocked(std::size_t queue_capacity, AdmissionPolicy admission) {
    ServerConfig cfg = base_config();
    cfg.executors = 1;
    cfg.queue_capacity = queue_capacity;
    cfg.admission = admission;
    server_.emplace(cfg);
    blocker_problem_ = make(192, 192, 192, 3);
    blocker_ = server_->submit_sgemm(blocker_problem_.a, blocker_problem_.b,
                                     blocker_problem_.c);
    ASSERT_TRUE(wait_running(blocker_));
    ASSERT_EQ(server_->queued(), 0u);
  }

  void TearDown() override {
    if (blocker_) blocker_->cancel();
    if (server_) server_->shutdown();
  }

  std::optional<GemmServer> server_;
  Problem blocker_problem_;
  RequestHandle blocker_;
};

TEST_F(BlockedServerTest, RejectNewShedsWhenQueueIsFull) {
  StartBlocked(1, AdmissionPolicy::kRejectNew);
  const Problem p = make(32, 32, 32, 4);
  const RequestHandle queued = server_->submit_sgemm(p.a, p.b, p.c);
  EXPECT_FALSE(queued->done());
  // The queue is full now: the next submission sheds immediately.
  const RequestHandle shed = server_->submit_sgemm(p.a, p.b, p.c);
  EXPECT_EQ(shed->status(), RequestStatus::kShed);
  EXPECT_NE(shed->error().find("queue full"), std::string::npos);
}

TEST_F(BlockedServerTest, EvictLowestPriorityShedsTheVictimExplicitly) {
  StartBlocked(1, AdmissionPolicy::kEvictLowestPriority);
  const Problem p = make(32, 32, 32, 5);
  RequestOptions low;
  low.priority = 1;
  const RequestHandle victim = server_->submit_sgemm(p.a, p.b, p.c, low);
  EXPECT_FALSE(victim->done());

  // Equal priority does not evict: the newcomer is shed instead.
  const RequestHandle equal = server_->submit_sgemm(p.a, p.b, p.c, low);
  EXPECT_EQ(equal->status(), RequestStatus::kShed);
  EXPECT_FALSE(victim->done());

  // A strictly higher priority evicts the queued low-priority request,
  // which resolves kShed (no silent drop).
  RequestOptions high;
  high.priority = 9;
  const RequestHandle winner = server_->submit_sgemm(p.a, p.b, p.c, high);
  EXPECT_EQ(victim->status(), RequestStatus::kShed);
  EXPECT_NE(victim->error().find("evicted"), std::string::npos);
  EXPECT_FALSE(winner->done());
}

TEST_F(BlockedServerTest, CancelWhileQueuedResolvesCancelled) {
  StartBlocked(8, AdmissionPolicy::kRejectNew);
  const Problem p = make(32, 32, 32, 6);
  const RequestHandle queued = server_->submit_sgemm(p.a, p.b, p.c);
  queued->cancel("changed my mind");
  blocker_->cancel();  // free the executor so it picks `queued` up
  queued->wait();
  EXPECT_EQ(queued->status(), RequestStatus::kCancelled);
  EXPECT_NE(queued->error().find("changed my mind"), std::string::npos);
  EXPECT_EQ(queued->attempts(), 0);
}

TEST_F(BlockedServerTest, DeadlineExpiringInQueueResolvesDeadlineExceeded) {
  StartBlocked(8, AdmissionPolicy::kRejectNew);
  const Problem p = make(32, 32, 32, 7);
  RequestOptions opts;
  opts.deadline_ms = 1;
  const RequestHandle queued = server_->submit_sgemm(p.a, p.b, p.c, opts);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  blocker_->cancel();
  queued->wait();
  EXPECT_EQ(queued->status(), RequestStatus::kDeadlineExceeded);
}

TEST_F(BlockedServerTest, ShutdownShedsQueuedRequestsExplicitly) {
  StartBlocked(8, AdmissionPolicy::kRejectNew);
  const Problem p = make(32, 32, 32, 8);
  const RequestHandle q1 = server_->submit_sgemm(p.a, p.b, p.c);
  const RequestHandle q2 = server_->submit_sgemm(p.a, p.b, p.c);
  blocker_->cancel();
  server_->shutdown();
  EXPECT_TRUE(q1->done());
  EXPECT_TRUE(q2->done());
  for (const RequestHandle& q : {q1, q2}) {
    // Either the executor got to it before shutdown drained the queue
    // (kOk) or it was shed - never stuck, never silently dropped.
    EXPECT_TRUE(q->status() == RequestStatus::kShed ||
                q->status() == RequestStatus::kOk)
        << request_status_name(q->status());
  }
  // Post-shutdown submissions shed immediately.
  const RequestHandle late = server_->submit_sgemm(p.a, p.b, p.c);
  EXPECT_EQ(late->status(), RequestStatus::kShed);
}

TEST(GemmServer, DeadlineMidRunResolvesDeadlineExceeded) {
  ServerConfig cfg = base_config();
  cfg.executors = 1;
  cfg.default_deadline_ms = 30;  // far less than a 192^3 emulated GEMM
  GemmServer server(cfg);
  const Problem p = make(192, 192, 192, 9);
  const RequestHandle req = server.submit_sgemm(p.a, p.b, p.c);
  req->wait();
  EXPECT_EQ(req->status(), RequestStatus::kDeadlineExceeded) << req->error();
}

TEST(GemmServer, PerRequestDeadlineOptOutOverridesServerDefault) {
  ServerConfig cfg = base_config();
  cfg.default_deadline_ms = 60'000;
  GemmServer server(cfg);
  const Problem p = make(32, 32, 32, 10);
  RequestOptions opts;
  opts.deadline_ms = -1;  // no deadline even though the server has one
  const RequestHandle req = server.submit_sgemm(p.a, p.b, p.c, opts);
  req->wait();
  EXPECT_EQ(req->status(), RequestStatus::kOk) << req->error();
}

TEST(GemmServer, DegradedPerPolicyResolvesDegraded) {
  // Persistent faults with the ladder floored at the top rung and a
  // degrade terminal: the request completes with the suspect result
  // and reports kDegraded.
  ServerConfig cfg = base_config();
  const fault::FaultInjector inj(
      11, fault::SiteRates::only(fault::Site::kAccumulator, 1.0));
  cfg.engine.injector = &inj;
  cfg.recovery.floor = gemm::Route::kMicrokernel;
  cfg.recovery.terminal = gemm::RecoveryPolicy::Terminal::kDegrade;
  GemmServer server(cfg);
  const Problem p = make(32, 32, 64, 11);
  const RequestHandle req = server.submit_sgemm(p.a, p.b, p.c);
  req->wait();
  ASSERT_EQ(req->status(), RequestStatus::kDegraded) << req->error();
  EXPECT_GT(req->stats().recovery.degraded_tiles, 0);
  server.shutdown();
}

TEST(GemmServer, ExhaustedLadderRetriesThenFails) {
  // Terminal::kThrow with a floored ladder: every attempt exhausts its
  // retries and throws AbftFailure; the server retries max_attempts
  // times, then resolves kFailed with a structured error.
  ServerConfig cfg = base_config();
  const fault::FaultInjector inj(
      12, fault::SiteRates::only(fault::Site::kAccumulator, 1.0));
  cfg.engine.injector = &inj;
  cfg.recovery.floor = gemm::Route::kMicrokernel;
  cfg.recovery.retries_per_route = 1;
  cfg.max_attempts = 2;
  cfg.retry_backoff_ms = 0;
  GemmServer server(cfg);
  const Problem p = make(32, 32, 64, 12);
  const RequestHandle req = server.submit_sgemm(p.a, p.b, p.c);
  req->wait();
  ASSERT_EQ(req->status(), RequestStatus::kFailed);
  EXPECT_EQ(req->attempts(), 2);
  EXPECT_NE(req->error().find("attempts"), std::string::npos);
  server.shutdown();
}

TEST(GemmServer, QuarantineIsScopedPerTenant) {
  // Both tenants run on the same faulty engine and grid, but each
  // accumulates quarantine state under its own key: tenant B's first
  // request walks the full ladder itself (demotions > 0, zero
  // quarantine hits) even after tenant A quarantined the same tile
  // index - A's offenders never demote B's route.
  ServerConfig cfg = base_config();
  cfg.executors = 1;  // serialize so cross-request ordering is exact
  const fault::FaultInjector inj(
      13, fault::SiteRates::only(fault::Site::kAccumulator, 1.0));
  cfg.engine.injector = &inj;
  GemmServer server(cfg);
  const Problem p = make(32, 32, 64, 13);  // single-tile grid

  RequestOptions ta;
  ta.tenant = "tenant-a";
  const RequestHandle a1 = server.submit_sgemm(p.a, p.b, p.c, ta);
  a1->wait();
  ASSERT_EQ(a1->status(), RequestStatus::kOk) << a1->error();
  EXPECT_GT(a1->stats().recovery.demotions, 0);
  EXPECT_EQ(server.tenant_quarantine_size("tenant-a", 1, 1), 1u);
  EXPECT_EQ(server.tenant_quarantine_size("tenant-b", 1, 1), 0u);

  // A's second request benefits from A's quarantine.
  const RequestHandle a2 = server.submit_sgemm(p.a, p.b, p.c, ta);
  a2->wait();
  ASSERT_EQ(a2->status(), RequestStatus::kOk) << a2->error();
  EXPECT_EQ(a2->stats().recovery.demotions, 0);
  EXPECT_GT(a2->stats().recovery.quarantine_hits, 0);

  // B starts cold despite A's history on the identical grid.
  RequestOptions tb;
  tb.tenant = "tenant-b";
  const RequestHandle b1 = server.submit_sgemm(p.a, p.b, p.c, tb);
  b1->wait();
  ASSERT_EQ(b1->status(), RequestStatus::kOk) << b1->error();
  EXPECT_GT(b1->stats().recovery.demotions, 0);
  EXPECT_EQ(b1->stats().recovery.quarantine_hits, 0);
  EXPECT_EQ(server.tenant_quarantine_size("tenant-b", 1, 1), 1u);
  server.shutdown();
}

TEST(GemmServer, PackCacheCoalescesSameWeightsRequests) {
  const ServerConfig cfg = base_config();
  const core::M3xuEngine direct_engine{cfg.engine};
  const Problem p = make(64, 64, 64, 14);
  Matrix<float> ref = p.c;
  gemm::tiled_sgemm(direct_engine, cfg.tile, p.a, p.b, ref);

  GemmServer server(cfg);
  RequestOptions opts;
  opts.b_key = 0xFEED;
  const RequestHandle r1 = server.submit_sgemm(p.a, p.b, p.c, opts);
  r1->wait();
  ASSERT_EQ(r1->status(), RequestStatus::kOk) << r1->error();
  const std::uint64_t hits_before = server.pack_cache().hits();
  const RequestHandle r2 = server.submit_sgemm(p.a, p.b, p.c, opts);
  r2->wait();
  ASSERT_EQ(r2->status(), RequestStatus::kOk) << r2->error();
  EXPECT_GT(server.pack_cache().hits(), hits_before);
  // Cached packing must not change a single bit of the result.
  EXPECT_TRUE(bitwise_equal(r1->result_f32(), ref));
  EXPECT_TRUE(bitwise_equal(r2->result_f32(), ref));
}

TEST(GemmServer, CorruptedSharedPanelIsRepackedNotServed) {
  const ServerConfig cfg = base_config();
  const core::M3xuEngine direct_engine{cfg.engine};
  const Problem p = make(64, 64, 64, 15);
  Matrix<float> ref = p.c;
  gemm::tiled_sgemm(direct_engine, cfg.tile, p.a, p.b, ref);

  GemmServer server(cfg);
  RequestOptions opts;
  opts.b_key = 0xBAD;
  const RequestHandle r1 = server.submit_sgemm(p.a, p.b, p.c, opts);
  r1->wait();
  ASSERT_EQ(r1->status(), RequestStatus::kOk) << r1->error();
  ASSERT_TRUE(server.pack_cache().corrupt_one(0xBAD));
  const RequestHandle r2 = server.submit_sgemm(p.a, p.b, p.c, opts);
  r2->wait();
  ASSERT_EQ(r2->status(), RequestStatus::kOk) << r2->error();
  EXPECT_GT(server.pack_cache().corrupt_dropped(), 0u);
  EXPECT_TRUE(bitwise_equal(r2->result_f32(), ref));
}

TEST_F(BlockedServerTest, DeadlineExpiredInQueueNeverStartsExecution) {
  // Regression for the deadline race: a request whose deadline expired
  // while queued used to reach the executor, where the old floor-1ms
  // watchdog arm gave it a bonus millisecond of real execution. The
  // executor must now re-check expiry at execution entry and resolve
  // without a single attempt.
  StartBlocked(8, AdmissionPolicy::kRejectNew);
  const Problem p = make(32, 32, 32, 17);
  RequestOptions opts;
  opts.deadline_ms = 1;
  const RequestHandle queued = server_->submit_sgemm(p.a, p.b, p.c, opts);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  blocker_->cancel();
  queued->wait();
  ASSERT_EQ(queued->status(), RequestStatus::kDeadlineExceeded)
      << queued->error();
  EXPECT_EQ(queued->attempts(), 0);
  // Either guard may catch it (dequeue-time or execution-entry); what
  // matters is that no attempt ran.
  EXPECT_NE(queued->error().find("deadline exceeded"), std::string::npos)
      << queued->error();
}

TEST(GemmServer, ShutdownDuringRetryBackoffResolvesPromptly) {
  // Regression for the backoff hang: a request sleeping out a long
  // retry backoff used to hold shutdown() hostage for the full
  // backoff and then resolve as if nothing happened. The backoff wait
  // must wake on shutdown and resolve the request terminally.
  ServerConfig cfg = base_config();
  const fault::FaultInjector inj(
      18, fault::SiteRates::only(fault::Site::kAccumulator, 1.0));
  cfg.engine.injector = &inj;
  cfg.recovery.floor = gemm::Route::kMicrokernel;
  cfg.recovery.retries_per_route = 1;
  cfg.executors = 1;
  cfg.max_attempts = 3;
  cfg.retry_backoff_ms = 60'000;  // far longer than the test budget
  GemmServer server(cfg);
  const Problem p = make(32, 32, 64, 18);
  const RequestHandle req = server.submit_sgemm(p.a, p.b, p.c);

  // Wait until the first attempt failed and the executor entered the
  // backoff sleep.
  const auto t0 = std::chrono::steady_clock::now();
  while (req->attempts() < 1 &&
         std::chrono::steady_clock::now() - t0 < std::chrono::seconds(30)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(req->attempts(), 1);

  const auto shutdown_start = std::chrono::steady_clock::now();
  server.shutdown();
  const auto elapsed = std::chrono::steady_clock::now() - shutdown_start;
  EXPECT_LT(elapsed, std::chrono::seconds(10))
      << "shutdown blocked on retry backoff";
  ASSERT_TRUE(req->done());
  EXPECT_EQ(req->status(), RequestStatus::kShed)
      << request_status_name(req->status());
  EXPECT_NE(req->error().find("shutdown during retry backoff"),
            std::string::npos)
      << req->error();
}

TEST(GemmServer, RepeatedShapesReuseOneCompiledPlan) {
  const ServerConfig cfg = base_config();
  const core::M3xuEngine direct_engine{cfg.engine};
  const Problem p = make(64, 64, 64, 19);
  Matrix<float> ref = p.c;
  gemm::tiled_sgemm(direct_engine, cfg.tile, p.a, p.b, ref);

  GemmServer server(cfg);
  EXPECT_EQ(server.plan_count(), 0u);
  for (int i = 0; i < 3; ++i) {
    const RequestHandle req = server.submit_sgemm(p.a, p.b, p.c);
    req->wait();
    ASSERT_EQ(req->status(), RequestStatus::kOk) << req->error();
    EXPECT_TRUE(bitwise_equal(req->result_f32(), ref));
  }
  EXPECT_EQ(server.plan_count(), 1u);  // one shape, one compiled plan

  const Problem q = make(32, 48, 64, 20);
  const RequestHandle other = server.submit_sgemm(q.a, q.b, q.c);
  other->wait();
  ASSERT_EQ(other->status(), RequestStatus::kOk) << other->error();
  EXPECT_EQ(server.plan_count(), 2u);
  server.shutdown();
}

TEST(GemmServer, CancelMidRunResolvesCancelled) {
  ServerConfig cfg = base_config();
  cfg.executors = 1;
  GemmServer server(cfg);
  const Problem p = make(192, 192, 192, 16);
  const RequestHandle req = server.submit_sgemm(p.a, p.b, p.c);
  ASSERT_TRUE(wait_running(req));
  req->cancel();
  req->wait();
  EXPECT_EQ(req->status(), RequestStatus::kCancelled) << req->error();
}

}  // namespace
}  // namespace m3xu::serve
