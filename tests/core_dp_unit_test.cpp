// Tests for the dot-product unit model and lane-operand conversions.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "core/dp_unit.hpp"
#include "core/lane_operand.hpp"
#include "fp/split.hpp"

namespace m3xu::core {
namespace {

using fp::ExactAccumulator;

LaneOperand finite_op(bool sign, std::uint64_t sig, int exp2) {
  LaneOperand op;
  op.cls = LaneOperand::Cls::kFinite;
  op.sign = sign;
  op.sig = sig;
  op.exp2 = exp2;
  return op;
}

LaneOperand special_op(LaneOperand::Cls cls, bool sign = false) {
  LaneOperand op;
  op.cls = cls;
  op.sign = sign;
  if (cls == LaneOperand::Cls::kFinite) op.sig = 1;
  return op;
}

TEST(DpUnit, SingleProductExact) {
  DpUnit unit({/*mult_bits=*/12});
  // 3 * 5 * 2^(2 + 3) = 480
  const LaneOperand a[] = {finite_op(false, 3, 2)};
  const LaneOperand b[] = {finite_op(false, 5, 3)};
  ExactAccumulator sum;
  unit.accumulate_dot(a, b, sum);
  EXPECT_EQ(sum.to_double(), 480.0);
}

TEST(DpUnit, SignHandling) {
  DpUnit unit({12});
  const LaneOperand a[] = {finite_op(true, 7, 0), finite_op(false, 7, 0)};
  const LaneOperand b[] = {finite_op(false, 2, 0), finite_op(true, 2, 0)};
  ExactAccumulator sum;
  unit.accumulate_dot(a, b, sum);
  EXPECT_EQ(sum.to_double(), -28.0);
}

TEST(DpUnit, FourLaneDotMatchesDouble) {
  DpUnit unit({12});
  Rng rng(31);
  for (int trial = 0; trial < 100'000; ++trial) {
    std::vector<LaneOperand> a, b;
    // Products span up to ~104 significant bits across the exponent
    // range below, so the reference needs __float128 (113-bit) to stay
    // exact; plain double would round.
    __float128 ref = 0;
    for (int lane = 0; lane < 4; ++lane) {
      const std::uint64_t sa = rng.next_below(1 << 12);
      const std::uint64_t sb = rng.next_below(1 << 12);
      const int ea = static_cast<int>(rng.next_below(40)) - 20;
      const int eb = static_cast<int>(rng.next_below(40)) - 20;
      const bool na = rng.next_below(2) != 0;
      const bool nb = rng.next_below(2) != 0;
      a.push_back(sa == 0 ? special_op(LaneOperand::Cls::kZero)
                          : finite_op(na, sa, ea));
      b.push_back(sb == 0 ? special_op(LaneOperand::Cls::kZero)
                          : finite_op(nb, sb, eb));
      ref += static_cast<__float128>((na == nb ? 1.0 : -1.0)) *
             static_cast<__float128>(sa) * static_cast<__float128>(sb) *
             static_cast<__float128>(std::ldexp(1.0, ea + eb));
    }
    ExactAccumulator sum;
    unit.accumulate_dot(a, b, sum);
    EXPECT_EQ(sum.to_double(), static_cast<double>(ref));
  }
}

TEST(DpUnit, NanPoisons) {
  DpUnit unit({12});
  const LaneOperand a[] = {special_op(LaneOperand::Cls::kNaN),
                           finite_op(false, 5, 0)};
  const LaneOperand b[] = {finite_op(false, 3, 0), finite_op(false, 2, 0)};
  ExactAccumulator sum;
  unit.accumulate_dot(a, b, sum);
  EXPECT_TRUE(std::isnan(sum.to_double()));
}

TEST(DpUnit, InfTimesZeroIsNan) {
  DpUnit unit({12});
  const LaneOperand a[] = {special_op(LaneOperand::Cls::kInf)};
  const LaneOperand b[] = {special_op(LaneOperand::Cls::kZero)};
  ExactAccumulator sum;
  unit.accumulate_dot(a, b, sum);
  EXPECT_TRUE(std::isnan(sum.to_double()));
}

TEST(DpUnit, InfTimesFiniteIsSignedInf) {
  DpUnit unit({12});
  const LaneOperand a[] = {special_op(LaneOperand::Cls::kInf, true)};
  const LaneOperand b[] = {finite_op(false, 3, 0)};
  ExactAccumulator sum;
  unit.accumulate_dot(a, b, sum);
  EXPECT_TRUE(std::isinf(sum.to_double()));
  EXPECT_LT(sum.to_double(), 0.0);
}

TEST(DpUnit, InfTimesInfIsInf) {
  DpUnit unit({12});
  const LaneOperand a[] = {special_op(LaneOperand::Cls::kInf, true)};
  const LaneOperand b[] = {special_op(LaneOperand::Cls::kInf, true)};
  ExactAccumulator sum;
  unit.accumulate_dot(a, b, sum);
  EXPECT_TRUE(std::isinf(sum.to_double()));
  EXPECT_GT(sum.to_double(), 0.0);  // (-Inf)*(-Inf) = +Inf
}

TEST(DpUnit, OpposingInfinitiesAreNan) {
  DpUnit unit({12});
  const LaneOperand a[] = {special_op(LaneOperand::Cls::kInf),
                           special_op(LaneOperand::Cls::kInf, true)};
  const LaneOperand b[] = {finite_op(false, 1, 0), finite_op(false, 1, 0)};
  ExactAccumulator sum;
  unit.accumulate_dot(a, b, sum);
  EXPECT_TRUE(std::isnan(sum.to_double()));
}

TEST(DpUnit, FastPathBitIdenticalToDirectPath) {
  // The 192-bit local window is an exact re-association: results must
  // match the direct per-product accumulation bit for bit, including
  // mixed signs, wide exponent spreads (fallback), and specials.
  DpUnit fast({/*mult_bits=*/12, /*enable_fast_path=*/true});
  DpUnit direct({/*mult_bits=*/12, /*enable_fast_path=*/false});
  Rng rng(33);
  for (int trial = 0; trial < 200'000; ++trial) {
    const int lanes = 1 + static_cast<int>(rng.next_below(16));
    std::vector<LaneOperand> a, b;
    for (int lane = 0; lane < lanes; ++lane) {
      const std::uint64_t sa = rng.next_below(1 << 12);
      const std::uint64_t sb = rng.next_below(1 << 12);
      // Mix narrow and wide exponent spreads to hit both paths.
      const int spread = (trial % 2) ? 30 : 200;
      const int ea = static_cast<int>(rng.next_below(spread)) - spread / 2;
      const int eb = static_cast<int>(rng.next_below(spread)) - spread / 2;
      a.push_back(sa == 0 ? special_op(LaneOperand::Cls::kZero)
                          : finite_op(rng.next_below(2), sa, ea));
      b.push_back(sb == 0 ? special_op(LaneOperand::Cls::kZero)
                          : finite_op(rng.next_below(2), sb, eb));
    }
    ExactAccumulator s1, s2;
    fast.accumulate_dot(a, b, s1);
    direct.accumulate_dot(a, b, s2);
    EXPECT_EQ(bits_of(s1.to_double()), bits_of(s2.to_double())) << trial;
  }
}

TEST(DpUnit, FastPathWithSpecialsMatches) {
  DpUnit fast({12, true});
  DpUnit direct({12, false});
  const LaneOperand a[] = {finite_op(false, 100, 0),
                           special_op(LaneOperand::Cls::kInf),
                           finite_op(true, 200, -3)};
  const LaneOperand b[] = {finite_op(false, 3, 1), finite_op(false, 2, 0),
                           finite_op(false, 5, 2)};
  ExactAccumulator s1, s2;
  fast.accumulate_dot(a, b, s1);
  direct.accumulate_dot(a, b, s2);
  EXPECT_EQ(bits_of(s1.to_double()), bits_of(s2.to_double()));
  EXPECT_TRUE(std::isinf(s1.to_double()));
}

TEST(LaneOperand, FromHwPartRoundTripsValue) {
  Rng rng(32);
  for (int i = 0; i < 200'000; ++i) {
    const float a = rng.scaled_float();
    if (a == 0.0f) continue;
    const fp::HwSplit s = fp::split_fp32_hw(a);
    const LaneOperand hi = from_hw_part(s.hi);
    const LaneOperand lo = from_hw_part(s.lo);
    auto value = [](const LaneOperand& op) {
      if (op.cls != LaneOperand::Cls::kFinite) return 0.0;
      const double mag =
          std::ldexp(static_cast<double>(op.sig), op.exp2);
      return op.sign ? -mag : mag;
    };
    EXPECT_EQ(value(hi), fp::hw_part_value(s.hi));
    EXPECT_EQ(value(lo), fp::hw_part_value(s.lo));
    EXPECT_EQ(value(hi) + value(lo), static_cast<double>(a));
  }
}

TEST(LaneOperand, NegatedFlipsSignOnly) {
  const LaneOperand op = finite_op(false, 123, -4);
  const LaneOperand neg = op.negated();
  EXPECT_TRUE(neg.sign);
  EXPECT_EQ(neg.sig, op.sig);
  EXPECT_EQ(neg.exp2, op.exp2);
  EXPECT_FALSE(neg.negated().sign);
}

TEST(LaneOperand, FromUnpackedExactValues) {
  // 1.5 in 11 bits: sig = 0b11 << 9.
  const LaneOperand op = from_unpacked(fp::unpack(1.5f), 11);
  EXPECT_EQ(op.cls, LaneOperand::Cls::kFinite);
  EXPECT_EQ(op.sig, 0b11u << 9);
  EXPECT_EQ(std::ldexp(static_cast<double>(op.sig), op.exp2), 1.5);
}

TEST(LaneOperand, FromUnpackedSpecials) {
  EXPECT_EQ(from_unpacked(fp::unpack(0.0f), 11).cls, LaneOperand::Cls::kZero);
  EXPECT_EQ(
      from_unpacked(fp::unpack(std::numeric_limits<float>::infinity()), 11)
          .cls,
      LaneOperand::Cls::kInf);
  EXPECT_EQ(
      from_unpacked(fp::unpack(std::numeric_limits<float>::quiet_NaN()), 11)
          .cls,
      LaneOperand::Cls::kNaN);
}

}  // namespace
}  // namespace m3xu::core
