// Tests for the M3XU engine: bit-exactness of the multi-step FP32 and
// FP32C modes, passthrough-mode semantics, FP64 mode, accumulation-
// register behaviour, GEMM chunking, and IEEE special handling.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <complex>
#include <limits>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "core/mxu.hpp"
#include "fp/exact_accumulator.hpp"

namespace m3xu::core {
namespace {


// std::span cannot bind to braced lists in C++20; tiny helpers for
// single- and dual-lane dot calls.
float dot1(const M3xuEngine& e, float a, float b, float c) {
  const float av[] = {a};
  const float bv[] = {b};
  return e.mma_dot_fp32(av, bv, c);
}

float dot2(const M3xuEngine& e, float a0, float a1, float b0, float b1,
           float c) {
  const float av[] = {a0, a1};
  const float bv[] = {b0, b1};
  return e.mma_dot_fp32(av, bv, c);
}

float pass1(const M3xuEngine& e, float a, float b, float c,
            const fp::FloatFormat& fmt) {
  const float av[] = {a};
  const float bv[] = {b};
  return e.mma_dot_passthrough(av, bv, c, fmt);
}

std::complex<float> cdot1(const M3xuEngine& e, std::complex<float> a,
                          std::complex<float> b, std::complex<float> c) {
  const std::complex<float> av[] = {a};
  const std::complex<float> bv[] = {b};
  return e.mma_dot_fp32c(av, bv, c);
}

double ddot1(const M3xuEngine& e, double a, double b, double c) {
  const double av[] = {a};
  const double bv[] = {b};
  return e.mma_dot_fp64(av, bv, c);
}

M3xuConfig per_instruction_config() {
  M3xuConfig c;
  c.per_step_rounding = false;
  return c;
}

// ---------------------------------------------------------------------
// FP32 mode
// ---------------------------------------------------------------------

class Fp32ExactProduct : public ::testing::TestWithParam<bool> {};

TEST_P(Fp32ExactProduct, SingleProductIsCorrectlyRounded) {
  // K=1, C=0: both rounding configs must return the correctly rounded
  // FP32 product (the split covers all 48 product bits; see DESIGN.md).
  M3xuConfig cfg;
  cfg.per_step_rounding = GetParam();
  const M3xuEngine engine(cfg);
  Rng rng(41);
  for (int i = 0; i < 300'000; ++i) {
    const float a = rng.scaled_float();
    const float b = rng.scaled_float();
    const float got = dot1(engine, a, b, 0.0f);
    const float expected =
        static_cast<float>(static_cast<double>(a) * static_cast<double>(b));
    EXPECT_EQ(bits_of(got), bits_of(expected)) << a << " * " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(RoundingConfigs, Fp32ExactProduct,
                         ::testing::Bool(), [](const auto& info) {
                           return info.param ? "per_step" : "per_instruction";
                         });

TEST(M3xuFp32, FullExponentRangeProducts) {
  // Exercise extreme (but in-range, non-overflowing) exponents.
  const M3xuEngine engine;
  Rng rng(42);
  for (int i = 0; i < 300'000; ++i) {
    const float a = rng.any_finite_float();
    const float b = rng.any_finite_float();
    if (std::fpclassify(a) != FP_NORMAL || std::fpclassify(b) != FP_NORMAL) {
      continue;
    }
    const double prod = static_cast<double>(a) * static_cast<double>(b);
    // Skip products that overflow/underflow FP32 (writeback clamps
    // differently than the host's double intermediate would).
    if (std::fabs(prod) > 1e38 || std::fabs(prod) < 1e-37) continue;
    const float got = dot1(engine, a, b, 0.0f);
    EXPECT_EQ(bits_of(got), bits_of(static_cast<float>(prod))) << a << " " << b;
  }
}

TEST(M3xuFp32, DotWithAccumulateMatchesExactOracle) {
  // Per-instruction config: result must equal the single-rounded exact
  // dot product including C.
  const M3xuEngine engine(per_instruction_config());
  Rng rng(43);
  for (int trial = 0; trial < 50'000; ++trial) {
    std::array<float, 8> a{}, b{};
    for (auto& v : a) v = rng.scaled_float();
    for (auto& v : b) v = rng.scaled_float();
    const float c = rng.scaled_float();
    fp::ExactAccumulator oracle;
    for (int k = 0; k < 8; ++k) {
      oracle.add_product(fp::unpack(a[k]), fp::unpack(b[k]));
    }
    oracle.add_double(c);
    const float got = engine.mma_dot_fp32(a, b, c);
    EXPECT_EQ(bits_of(got), bits_of(oracle.to_float()));
  }
}

TEST(M3xuFp32, PerStepRoundingStaysWithinOneUlpOfExact) {
  const M3xuEngine engine;  // default: per-step, 48-bit registers
  Rng rng(44);
  for (int trial = 0; trial < 50'000; ++trial) {
    std::array<float, 8> a{}, b{};
    for (auto& v : a) v = rng.scaled_float();
    for (auto& v : b) v = rng.scaled_float();
    const float c = rng.scaled_float();
    fp::ExactAccumulator oracle;
    for (int k = 0; k < 8; ++k) {
      oracle.add_product(fp::unpack(a[k]), fp::unpack(b[k]));
    }
    oracle.add_double(c);
    const double exact = oracle.to_double();
    const float got = engine.mma_dot_fp32(a, b, c);
    // 48-bit intermediate registers: the final FP32 value differs from
    // the correctly rounded one by at most 1 ulp.
    const float rounded = static_cast<float>(exact);
    const float next = std::nextafterf(rounded, got);
    EXPECT_TRUE(got == rounded || got == next)
        << got << " vs " << rounded << " (exact " << exact << ")";
  }
}

TEST(M3xuFp32, GemmEqualsPerElementDots) {
  const M3xuEngine engine;
  Rng rng(45);
  const int m = 7, n = 5, k = 19;  // deliberately awkward sizes
  std::vector<float> a(m * k), b(k * n), c(m * n), c2(m * n);
  for (auto& v : a) v = rng.scaled_float();
  for (auto& v : b) v = rng.scaled_float();
  for (auto& v : c) v = rng.scaled_float();
  c2 = c;
  engine.gemm_fp32(m, n, k, a.data(), k, b.data(), n, c.data(), n);
  // Reference: chunked dots exactly as the contract specifies.
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = c2[i * n + j];
      for (int k0 = 0; k0 < k; k0 += 8) {
        const int kc = std::min(8, k - k0);
        std::vector<float> av(kc), bv(kc);
        for (int kk = 0; kk < kc; ++kk) {
          av[kk] = a[i * k + k0 + kk];
          bv[kk] = b[(k0 + kk) * n + j];
        }
        acc = engine.mma_dot_fp32({av.data(), av.size()},
                                  {bv.data(), bv.size()}, acc);
      }
      EXPECT_EQ(bits_of(c[i * n + j]), bits_of(acc)) << i << "," << j;
    }
  }
}

TEST(M3xuFp32, SmallIntegerGemmIsExact) {
  // Integer-valued inputs: every product and partial sum is exactly
  // representable, so the result must equal exact integer GEMM in both
  // rounding configs.
  for (bool per_step : {false, true}) {
    M3xuConfig cfg;
    cfg.per_step_rounding = per_step;
    const M3xuEngine engine(cfg);
    Rng rng(46);
    const int m = 9, n = 8, k = 33;
    std::vector<float> a(m * k), b(k * n), c(m * n, 0.0f);
    std::vector<long> ref(m * n, 0);
    for (auto& v : a) v = static_cast<float>(rng.next_below(17)) - 8.0f;
    for (auto& v : b) v = static_cast<float>(rng.next_below(17)) - 8.0f;
    engine.gemm_fp32(m, n, k, a.data(), k, b.data(), n, c.data(), n);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        long s = 0;
        for (int kk = 0; kk < k; ++kk) {
          s += static_cast<long>(a[i * k + kk]) *
               static_cast<long>(b[kk * n + j]);
        }
        EXPECT_EQ(c[i * n + j], static_cast<float>(s));
      }
    }
  }
}

TEST(M3xuFp32, SubnormalInputsFlushToZero) {
  const M3xuEngine engine;
  const float sub = float_from_bits(0x00400000);  // large subnormal
  EXPECT_EQ(dot1(engine, sub, 2.0f, 0.0f), 0.0f);
  EXPECT_EQ(dot1(engine, sub, 2.0f, 3.0f), 3.0f);
}

TEST(M3xuFp32, SubnormalOutputsAreGradual) {
  // Normal inputs whose product underflows into FP32's subnormal range
  // must round gradually (not flush) on writeback - matching host
  // float multiplication.
  const M3xuEngine engine;
  Rng rng(58);
  int subnormal_seen = 0;
  for (int i = 0; i < 200'000; ++i) {
    const float a = std::ldexp(rng.uniform(0.5f, 1.0f),
                               -static_cast<int>(rng.next_below(60)) - 40);
    const float b = std::ldexp(rng.uniform(0.5f, 1.0f),
                               -static_cast<int>(rng.next_below(60)) - 40);
    if (std::fpclassify(a) != FP_NORMAL || std::fpclassify(b) != FP_NORMAL) {
      continue;
    }
    const float expected = a * b;  // host RNE incl. gradual underflow
    const float got = dot1(engine, a, b, 0.0f);
    EXPECT_EQ(bits_of(got), bits_of(expected)) << a << " * " << b;
    if (std::fpclassify(expected) == FP_SUBNORMAL) ++subnormal_seen;
  }
  EXPECT_GT(subnormal_seen, 1000);  // the sweep actually hit the range
}

TEST(M3xuFp32, OverflowSaturatesToInfinity) {
  const M3xuEngine engine;
  const float big = 3e38f;
  EXPECT_TRUE(std::isinf(dot1(engine, big, big, 0.0f)));
  EXPECT_LT(dot1(engine, big, -big, 0.0f), 0.0f);
  EXPECT_TRUE(std::isinf(dot1(engine, big, -big, 0.0f)));
}

TEST(M3xuFp32, IeeeSpecials) {
  const M3xuEngine engine;
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(dot1(engine, nan, 1.0f, 0.0f)));
  EXPECT_TRUE(std::isnan(dot1(engine, inf, 0.0f, 0.0f)));
  EXPECT_EQ(dot1(engine, inf, 2.0f, 0.0f), inf);
  EXPECT_EQ(dot1(engine, inf, -2.0f, 0.0f), -inf);
  EXPECT_EQ(dot1(engine, inf, inf, 0.0f), inf);
  EXPECT_EQ(dot1(engine, -inf, inf, 0.0f), -inf);
  // +Inf + -Inf across lanes -> NaN.
  EXPECT_TRUE(std::isnan(
      dot2(engine, inf, inf, 1.0f, -1.0f, 0.0f)));
  // Inf in C propagates.
  EXPECT_EQ(dot1(engine, 1.0f, 1.0f, inf), inf);
}

// ---------------------------------------------------------------------
// Passthrough modes
// ---------------------------------------------------------------------

TEST(M3xuPassthrough, Fp16SmallIntegerDotIsExact) {
  const M3xuEngine engine;
  Rng rng(47);
  for (int trial = 0; trial < 20'000; ++trial) {
    std::array<float, 16> a{}, b{};
    double ref = 0.0;
    for (int k = 0; k < 16; ++k) {
      a[k] = static_cast<float>(rng.next_below(33)) - 16.0f;
      b[k] = static_cast<float>(rng.next_below(33)) - 16.0f;
      ref += static_cast<double>(a[k]) * b[k];
    }
    EXPECT_EQ(engine.mma_dot_passthrough(a, b, 0.0f, fp::kFp16),
              static_cast<float>(ref));
  }
}

TEST(M3xuPassthrough, InputsAreRoundedToFormat) {
  const M3xuEngine engine;
  const float v = 1.0f + std::ldexp(1.0f, -12);  // below TF32 precision
  // TF32 mode loses the low bit...
  EXPECT_EQ(pass1(engine, v, 1.0f, 0.0f, fp::kTf32),
            1.0f);
  // ...the FP32 multi-step mode does not (the paper's headline point).
  EXPECT_EQ(dot1(engine, v, 1.0f, 0.0f), v);
  // BF16 is coarser still.
  EXPECT_EQ(
      pass1(engine, 1.0f + std::ldexp(1.0f, -9), 1.0f, 0.0f, fp::kBf16),
      1.0f);
}

TEST(M3xuPassthrough, MatchesExactOracleAfterRounding) {
  const M3xuEngine engine;
  Rng rng(48);
  for (int trial = 0; trial < 20'000; ++trial) {
    std::array<float, 16> a{}, b{};
    for (auto& v : a) v = rng.scaled_float();
    for (auto& v : b) v = rng.scaled_float();
    const float c = rng.scaled_float();
    fp::ExactAccumulator oracle;
    for (int k = 0; k < 16; ++k) {
      oracle.add_product(fp::unpack(fp::round_to_format(a[k], fp::kFp16)),
                         fp::unpack(fp::round_to_format(b[k], fp::kFp16)));
    }
    oracle.add_double(c);
    EXPECT_EQ(bits_of(engine.mma_dot_passthrough(a, b, c, fp::kFp16)),
              bits_of(oracle.to_float()));
  }
}

// ---------------------------------------------------------------------
// FP32C mode
// ---------------------------------------------------------------------

TEST(M3xuFp32c, SingleComplexProductMatchesExactOracle) {
  const M3xuEngine engine(per_instruction_config());
  Rng rng(49);
  using C = std::complex<float>;
  for (int trial = 0; trial < 100'000; ++trial) {
    const C a(rng.scaled_float(), rng.scaled_float());
    const C b(rng.scaled_float(), rng.scaled_float());
    const C got = cdot1(engine, a, b, C{0.0f, 0.0f});
    fp::ExactAccumulator re, im;
    re.add_product(fp::unpack(a.real()), fp::unpack(b.real()));
    re.add_product(fp::unpack(-a.imag()), fp::unpack(b.imag()));
    im.add_product(fp::unpack(a.real()), fp::unpack(b.imag()));
    im.add_product(fp::unpack(a.imag()), fp::unpack(b.real()));
    EXPECT_EQ(bits_of(got.real()), bits_of(re.to_float()));
    EXPECT_EQ(bits_of(got.imag()), bits_of(im.to_float()));
  }
}

TEST(M3xuFp32c, PurelyImaginarySquareIsNegativeReal) {
  const M3xuEngine engine;
  Rng rng(50);
  using C = std::complex<float>;
  for (int i = 0; i < 50'000; ++i) {
    const float x = rng.scaled_float();
    const float y = rng.scaled_float();
    // (xi)(yi) = -xy exactly.
    const C got = cdot1(engine, C(0.0f, x), C(0.0f, y), C{0.0f, 0.0f});
    const float expected =
        -static_cast<float>(static_cast<double>(x) * static_cast<double>(y));
    EXPECT_EQ(bits_of(got.real()), bits_of(expected));
    EXPECT_EQ(got.imag(), 0.0f);
  }
}

TEST(M3xuFp32c, DotWithAccumulate) {
  const M3xuEngine engine(per_instruction_config());
  Rng rng(51);
  using C = std::complex<float>;
  for (int trial = 0; trial < 20'000; ++trial) {
    std::array<C, 4> a{}, b{};
    for (auto& v : a) v = C(rng.scaled_float(), rng.scaled_float());
    for (auto& v : b) v = C(rng.scaled_float(), rng.scaled_float());
    const C c(rng.scaled_float(), rng.scaled_float());
    fp::ExactAccumulator re, im;
    for (int k = 0; k < 4; ++k) {
      re.add_product(fp::unpack(a[k].real()), fp::unpack(b[k].real()));
      re.add_product(fp::unpack(-a[k].imag()), fp::unpack(b[k].imag()));
      im.add_product(fp::unpack(a[k].real()), fp::unpack(b[k].imag()));
      im.add_product(fp::unpack(a[k].imag()), fp::unpack(b[k].real()));
    }
    re.add_double(c.real());
    im.add_double(c.imag());
    const C got = engine.mma_dot_fp32c(a, b, c);
    EXPECT_EQ(bits_of(got.real()), bits_of(re.to_float()));
    EXPECT_EQ(bits_of(got.imag()), bits_of(im.to_float()));
  }
}

TEST(M3xuFp32c, GemmMatchesDoubleReferenceClosely) {
  const M3xuEngine engine;  // per-step (faithful hardware)
  Rng rng(52);
  using C = std::complex<float>;
  const int m = 6, n = 6, k = 17;
  std::vector<C> a(m * k), b(k * n), c(m * n, C{});
  for (auto& v : a) v = C(rng.scaled_float(), rng.scaled_float());
  for (auto& v : b) v = C(rng.scaled_float(), rng.scaled_float());
  engine.gemm_fp32c(m, n, k, a.data(), k, b.data(), n, c.data(), n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      std::complex<double> ref{};
      for (int kk = 0; kk < k; ++kk) {
        ref += std::complex<double>(a[i * k + kk]) *
               std::complex<double>(b[kk * n + j]);
      }
      const double scale = std::abs(ref) + 1.0;
      EXPECT_NEAR(c[i * n + j].real(), ref.real(), 1e-5 * scale);
      EXPECT_NEAR(c[i * n + j].imag(), ref.imag(), 1e-5 * scale);
    }
  }
}

// ---------------------------------------------------------------------
// FP64 mode
// ---------------------------------------------------------------------

TEST(M3xuFp64, SingleProductIsCorrectlyRounded) {
  const M3xuEngine engine(per_instruction_config());
  Rng rng(53);
  for (int i = 0; i < 200'000; ++i) {
    const double a = std::ldexp(rng.next_double() * 2.0 - 1.0,
                                static_cast<int>(rng.next_below(40)) - 20);
    const double b = std::ldexp(rng.next_double() * 2.0 - 1.0,
                                static_cast<int>(rng.next_below(40)) - 20);
    const double got = ddot1(engine, a, b, 0.0);
    EXPECT_EQ(bits_of(got), bits_of(a * b)) << a << " * " << b;
  }
}

TEST(M3xuFp64, PerStepRoundingBoundedError) {
  const M3xuEngine engine;
  Rng rng(54);
  for (int trial = 0; trial < 20'000; ++trial) {
    std::array<double, 4> a{}, b{};
    __float128 exact = 0;
    for (int k = 0; k < 4; ++k) {
      a[k] = rng.next_double() * 2.0 - 1.0;
      b[k] = rng.next_double() * 2.0 - 1.0;
      exact += static_cast<__float128>(a[k]) * b[k];
    }
    const double got = engine.mma_dot_fp64(a, b, 0.0);
    const double ref = static_cast<double>(exact);
    EXPECT_NEAR(got, ref, std::fabs(ref) * 1e-14 + 1e-300);
  }
}

TEST(M3xuFp64, GemmSmallIntegersExact) {
  const M3xuEngine engine;
  Rng rng(55);
  const int m = 5, n = 4, k = 13;
  std::vector<double> a(m * k), b(k * n), c(m * n, 0.0);
  for (auto& v : a) v = static_cast<double>(rng.next_below(201)) - 100.0;
  for (auto& v : b) v = static_cast<double>(rng.next_below(201)) - 100.0;
  engine.gemm_fp64(m, n, k, a.data(), k, b.data(), n, c.data(), n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double s = 0.0;
      for (int kk = 0; kk < k; ++kk) s += a[i * k + kk] * b[kk * n + j];
      EXPECT_EQ(c[i * n + j], s);
    }
  }
}

// ---------------------------------------------------------------------
// FP64 complex mode (SIV-C extension)
// ---------------------------------------------------------------------

TEST(M3xuFp64c, SingleComplexProductMatchesQuadOracle) {
  const M3xuEngine engine(per_instruction_config());
  Rng rng(56);
  using C = std::complex<double>;
  for (int trial = 0; trial < 50'000; ++trial) {
    const C a(rng.next_double() * 2.0 - 1.0, rng.next_double() * 2.0 - 1.0);
    const C b(rng.next_double() * 2.0 - 1.0, rng.next_double() * 2.0 - 1.0);
    const C av[] = {a};
    const C bv[] = {b};
    const C got = engine.mma_dot_fp64c(av, bv, C{});
    // Components are correctly rounded sums of two exact products:
    // compute the oracle in __float128 (exact here).
    const __float128 re = static_cast<__float128>(a.real()) * b.real() -
                          static_cast<__float128>(a.imag()) * b.imag();
    const __float128 im = static_cast<__float128>(a.real()) * b.imag() +
                          static_cast<__float128>(a.imag()) * b.real();
    EXPECT_EQ(bits_of(got.real()), bits_of(static_cast<double>(re)));
    EXPECT_EQ(bits_of(got.imag()), bits_of(static_cast<double>(im)));
  }
}

TEST(M3xuFp64c, PurelyImaginarySquare) {
  const M3xuEngine engine;
  using C = std::complex<double>;
  const C av[] = {C(0.0, 3.0)};
  const C bv[] = {C(0.0, 5.0)};
  const C got = engine.mma_dot_fp64c(av, bv, C{});
  EXPECT_EQ(got.real(), -15.0);
  EXPECT_EQ(got.imag(), 0.0);
}

TEST(M3xuFp64c, GemmSmallIntegersExact) {
  const M3xuEngine engine;
  Rng rng(57);
  using C = std::complex<double>;
  const int m = 4, n = 3, k = 9;
  std::vector<C> a(m * k), b(k * n), c(m * n, C{});
  auto randint = [&] {
    return static_cast<double>(rng.next_below(41)) - 20.0;
  };
  for (auto& v : a) v = {randint(), randint()};
  for (auto& v : b) v = {randint(), randint()};
  engine.gemm_fp64c(m, n, k, a.data(), k, b.data(), n, c.data(), n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      C ref{};
      for (int kk = 0; kk < k; ++kk) ref += a[i * k + kk] * b[kk * n + j];
      EXPECT_EQ(c[i * n + j], ref);
    }
  }
}

TEST(M3xuFp64c, SpecialsPropagate) {
  const M3xuEngine engine;
  using C = std::complex<double>;
  const double inf = std::numeric_limits<double>::infinity();
  const C av[] = {C(inf, 0.0)};
  const C bv[] = {C(2.0, 0.0)};
  const C got = engine.mma_dot_fp64c(av, bv, C{});
  EXPECT_EQ(got.real(), inf);
  const C av2[] = {C(std::numeric_limits<double>::quiet_NaN(), 0.0)};
  const C got2 = engine.mma_dot_fp64c(av2, bv, C{});
  EXPECT_TRUE(std::isnan(got2.real()));
}

// ---------------------------------------------------------------------
// Shapes & metadata
// ---------------------------------------------------------------------

TEST(MxuShapes, MatchPaperContracts) {
  // FP32 halves the FP16 instruction's K; FP32C/FP64 quarter it.
  EXPECT_EQ(shape_for(MxuMode::kFp16).k, 16);
  EXPECT_EQ(shape_for(MxuMode::kFp32).k, 8);
  EXPECT_EQ(shape_for(MxuMode::kFp32Complex).k, 4);
  EXPECT_EQ(shape_for(MxuMode::kFp64).k, 4);
  EXPECT_EQ(shape_for(MxuMode::kTf32).k, 8);
  EXPECT_EQ(steps_for(MxuMode::kFp16), 1);
  EXPECT_EQ(steps_for(MxuMode::kFp32), 2);
  EXPECT_EQ(steps_for(MxuMode::kFp32Complex), 4);
  EXPECT_EQ(steps_for(MxuMode::kFp64), 4);
  EXPECT_EQ(steps_for(MxuMode::kFp64Complex), 8);
  EXPECT_EQ(shape_for(MxuMode::kFp64Complex).k, 2);
  EXPECT_STREQ(mode_name(MxuMode::kFp32Complex), "fp32c");
  EXPECT_STREQ(mode_name(MxuMode::kFp64Complex), "fp64c");
}

}  // namespace
}  // namespace m3xu::core
