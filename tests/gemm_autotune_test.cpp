// Tests for the persistent autotuner: deterministic search under a
// synthetic cost model, TuneCache round-trips through the JSON file,
// and rejection of corrupt, tampered, version-mismatched, or invalid
// cache content (a damaged cache must cost a re-tune, never a wrong
// or unvalidated tile config).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "gemm/autotune.hpp"
#include "gemm/tiled_driver.hpp"

namespace m3xu::gemm {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool same_tile(const TileConfig& a, const TileConfig& b) {
  return a.block_m == b.block_m && a.block_n == b.block_n &&
         a.block_k == b.block_k && a.warp_m == b.warp_m &&
         a.warp_n == b.warp_n;
}

/// Synthetic cost: prefers one specific candidate, deterministic across
/// runs, so search outcomes do not depend on wall-clock noise. Stage-2
/// candidates share the winning tile, so the flat tile-based cost also
/// pins the width/parallelism overrides to "none" (strictly-less keeps
/// the stage-1 winner on ties).
double synthetic_cost(const TunedConfig& t) {
  return (t.tile.block_m == 32 && t.tile.block_n == 32) ? 1.0 : 2.0;
}

TEST(CpuSignature, NonEmptyAndStable) {
  const std::string sig = cpu_signature();
  EXPECT_FALSE(sig.empty());
  EXPECT_EQ(sig, cpu_signature());
}

TEST(DefaultCandidates, StartWithDefaultAndAllValid) {
  const PlanKey key{256, 256, 256, false};
  for (const bool quick : {false, true}) {
    const std::vector<TileConfig> cands = default_candidates(key, quick);
    ASSERT_FALSE(cands.empty());
    EXPECT_TRUE(same_tile(cands.front(), TileConfig{}));
    for (const TileConfig& tile : cands) {
      EXPECT_TRUE(tile.valid());
    }
  }
  EXPECT_LT(default_candidates(key, true).size(),
            default_candidates(key, false).size());
}

TEST(Autotune, DeterministicUnderFixedSeedAndCostModel) {
  const PlanKey key{64, 64, 64, false};
  AutotuneOptions opts;
  opts.quick = true;
  opts.reps = 1;
  opts.measure = &synthetic_cost;

  const AutotuneResult first = autotune(core::M3xuConfig{}, key, opts);
  const AutotuneResult second = autotune(core::M3xuConfig{}, key, opts);
  EXPECT_TRUE(same_tuned(first.best, second.best));
  EXPECT_EQ(first.candidates_tried, second.candidates_tried);
  EXPECT_EQ(first.bit_mismatches, 0);
  EXPECT_EQ(second.bit_mismatches, 0);
  // The synthetic cost singles out the 32x32 block candidate and no
  // width/parallelism override (flat cost across stage 2).
  EXPECT_EQ(first.best.tile.block_m, 32);
  EXPECT_EQ(first.best.tile.block_n, 32);
  EXPECT_EQ(first.best.mk_mr, 0);
  EXPECT_EQ(first.best.mk_nr, 0);
  EXPECT_EQ(first.best.threads, 0);
}

TEST(Autotune, Stage2PicksCheaperRegisterBlockShape) {
  // A cost model that rewards the 8x8 register block makes stage 2
  // override the microkernel shape - and the winner passed the same
  // bit-identity gate as every tile candidate.
  const PlanKey key{64, 64, 64, false};
  AutotuneOptions opts;
  opts.quick = true;
  opts.reps = 1;
  opts.measure = [](const TunedConfig& t) {
    double cost = (t.tile.block_m == 32 && t.tile.block_n == 32) ? 1.0 : 2.0;
    if (t.mk_mr == 8 && t.mk_nr == 8) cost -= 0.5;
    return cost;
  };
  const AutotuneResult result = autotune(core::M3xuConfig{}, key, opts);
  EXPECT_EQ(result.bit_mismatches, 0);
  EXPECT_EQ(result.best.tile.block_m, 32);
  EXPECT_EQ(result.best.mk_mr, 8);
  EXPECT_EQ(result.best.mk_nr, 8);
}

TEST(Autotune, EveryQuickCandidateIsBitIdentical) {
  // The gate itself: no candidate in the default quick set may change
  // result bits for either dtype.
  AutotuneOptions opts;
  opts.quick = true;
  opts.reps = 1;
  opts.measure = &synthetic_cost;
  const AutotuneResult sg = autotune(core::M3xuConfig{}, {96, 80, 96, false},
                                     opts);
  EXPECT_EQ(sg.bit_mismatches, 0);
  EXPECT_GT(sg.candidates_tried, 0);
  const AutotuneResult cg = autotune(core::M3xuConfig{}, {48, 48, 48, true},
                                     opts);
  EXPECT_EQ(cg.bit_mismatches, 0);
  EXPECT_GT(cg.candidates_tried, 0);
}

TEST(TuneCache, RoundTripsThroughTheFile) {
  const std::string path = temp_path("tune_roundtrip.json");
  const PlanKey key{96, 96, 96, false};
  const TunedConfig tuned{TileConfig{32, 32, 32, 16, 16}, 6, 8, 2};

  TuneCache writer(path);
  writer.store(key, cpu_signature(), tuned, 0.5);
  ASSERT_TRUE(writer.save());

  TuneCache reader(path);
  ASSERT_TRUE(reader.load());
  EXPECT_EQ(reader.size(), 1u);
  EXPECT_EQ(reader.rejected(), 0u);
  const std::optional<TunedConfig> hit = reader.lookup(key, cpu_signature());
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(same_tuned(*hit, tuned));
  // Different shape or signature: no hit.
  EXPECT_FALSE(reader.lookup({96, 96, 97, false}, cpu_signature()));
  EXPECT_FALSE(reader.lookup(key, "other-host"));
}

TEST(TuneCache, SecondAutotuneIsServedFromCache) {
  const std::string path = temp_path("tune_hit.json");
  const PlanKey key{64, 64, 64, false};
  AutotuneOptions opts;
  opts.quick = true;
  opts.reps = 1;
  opts.measure = &synthetic_cost;

  TuneCache cache(path);
  const AutotuneResult tuned = autotune(core::M3xuConfig{}, key, opts, &cache);
  EXPECT_FALSE(tuned.from_cache);

  TuneCache fresh(path);
  ASSERT_TRUE(fresh.load());
  const AutotuneResult reloaded =
      autotune(core::M3xuConfig{}, key, opts, &fresh);
  EXPECT_TRUE(reloaded.from_cache);
  EXPECT_TRUE(same_tuned(reloaded.best, tuned.best));
}

TEST(TuneCache, GarbageFileLoadsEmptyAndRetunes) {
  const std::string path = temp_path("tune_garbage.json");
  write_file(path, "this is not json {{{");

  TuneCache cache(path);
  EXPECT_FALSE(cache.load());
  EXPECT_EQ(cache.size(), 0u);

  // A corrupt cache must not block tuning; the re-tune overwrites it.
  AutotuneOptions opts;
  opts.quick = true;
  opts.reps = 1;
  opts.measure = &synthetic_cost;
  const AutotuneResult result =
      autotune(core::M3xuConfig{}, {64, 64, 64, false}, opts, &cache);
  EXPECT_FALSE(result.from_cache);
  EXPECT_EQ(cache.size(), 1u);

  TuneCache rewritten(path);
  EXPECT_TRUE(rewritten.load());
  EXPECT_EQ(rewritten.size(), 1u);
}

TEST(TuneCache, SchemaVersionMismatchIsRejectedWhole) {
  const std::string path = temp_path("tune_schema.json");
  const PlanKey key{96, 96, 96, false};
  TuneCache writer(path);
  writer.store(key, cpu_signature(), TunedConfig{}, 0.5);
  ASSERT_TRUE(writer.save());

  std::string text = read_file(path);
  const std::string want =
      "\"schema_version\": " + std::to_string(TuneCache::kSchemaVersion);
  const std::size_t pos = text.find(want);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, want.size(), "\"schema_version\": 999");
  write_file(path, text);

  TuneCache reader(path);
  EXPECT_FALSE(reader.load());
  EXPECT_EQ(reader.size(), 0u);
}

TEST(TuneCache, TamperedTileFailsItsChecksum) {
  const std::string path = temp_path("tune_tamper.json");
  const PlanKey key{96, 96, 96, false};
  const TunedConfig tuned{TileConfig{64, 64, 32, 32, 32}, 0, 0, 0};
  TuneCache writer(path);
  writer.store(key, cpu_signature(), tuned, 0.5);
  ASSERT_TRUE(writer.save());

  // Flip block_m in the serialized entry without updating the checksum.
  std::string text = read_file(path);
  const std::string want = "\"block_m\": 64";
  const std::size_t pos = text.find(want);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, want.size(), "\"block_m\": 128");
  write_file(path, text);

  TuneCache reader(path);
  EXPECT_TRUE(reader.load());  // document itself is fine
  EXPECT_EQ(reader.size(), 0u);
  EXPECT_EQ(reader.rejected(), 1u);
  EXPECT_FALSE(reader.lookup(key, cpu_signature()));
}

TEST(TuneCache, InvalidTileIsRejectedEvenWithValidChecksum) {
  // An attacker-free failure mode: an entry written by a buggy tool
  // could carry a checksum that matches an unusable tile. The validator
  // must still reject it - the checksum proves integrity, not validity.
  const std::string path = temp_path("tune_invalid_tile.json");
  const PlanKey key{64, 64, 64, false};
  TunedConfig bad{};
  bad.tile.block_m = 0;
  const std::uint64_t sum =
      TuneCache::entry_checksum(key, cpu_signature(), bad);

  std::ostringstream doc;
  doc << "{\n  \"schema_version\": " << TuneCache::kSchemaVersion
      << ",\n  \"entries\": [\n    {\n"
      << "      \"key\": \"sgemm.64x64x64\",\n"
      << "      \"m\": 64,\n      \"n\": 64,\n      \"k\": 64,\n"
      << "      \"cplx\": false,\n"
      << "      \"cpu\": \"" << cpu_signature() << "\",\n"
      << "      \"tile\": {\n"
      << "        \"block_m\": " << bad.tile.block_m << ",\n"
      << "        \"block_n\": " << bad.tile.block_n << ",\n"
      << "        \"block_k\": " << bad.tile.block_k << ",\n"
      << "        \"warp_m\": " << bad.tile.warp_m << ",\n"
      << "        \"warp_n\": " << bad.tile.warp_n << "\n      },\n"
      << "      \"mk_mr\": " << bad.mk_mr << ",\n"
      << "      \"mk_nr\": " << bad.mk_nr << ",\n"
      << "      \"threads\": " << bad.threads << ",\n"
      << "      \"seconds\": 0.5,\n"
      << "      \"checksum\": \"" << sum << "\"\n    }\n  ]\n}\n";
  write_file(path, doc.str());

  TuneCache reader(path);
  EXPECT_TRUE(reader.load());
  EXPECT_EQ(reader.size(), 0u);
  EXPECT_EQ(reader.rejected(), 1u);
}

TEST(TuneCache, UnsupportedRegisterBlockIsRejectedOnLoad) {
  // Same validity-vs-integrity split as the invalid-tile case: a v2
  // entry whose mk_mr/mk_nr pair no microkernel template implements is
  // dropped on load even though its checksum is correct.
  const std::string path = temp_path("tune_bad_mk.json");
  const PlanKey key{96, 96, 96, false};
  TuneCache writer(path);
  writer.store(key, cpu_signature(), TunedConfig{TileConfig{}, 5, 5, 0}, 0.5);
  ASSERT_TRUE(writer.save());

  TuneCache reader(path);
  EXPECT_TRUE(reader.load());
  EXPECT_EQ(reader.size(), 0u);
  EXPECT_EQ(reader.rejected(), 1u);
}

TEST(TuneCache, NumericChecksumIsRejected) {
  // Checksums are serialized as strings because the JSON number path
  // goes through double and loses bits above 2^53. An entry carrying a
  // numeric checksum is from a foreign writer; drop it.
  const std::string path = temp_path("tune_numeric_checksum.json");
  const PlanKey key{96, 96, 96, false};
  TuneCache writer(path);
  writer.store(key, cpu_signature(), TunedConfig{}, 0.5);
  ASSERT_TRUE(writer.save());

  std::string text = read_file(path);
  const std::size_t open = text.find("\"checksum\": \"");
  ASSERT_NE(open, std::string::npos);
  const std::size_t quote = open + std::string("\"checksum\": ").size();
  const std::size_t close = text.find('"', quote + 1);
  ASSERT_NE(close, std::string::npos);
  text.erase(close, 1);
  text.erase(quote, 1);
  write_file(path, text);

  TuneCache reader(path);
  EXPECT_TRUE(reader.load());
  EXPECT_EQ(reader.rejected(), 1u);
}

}  // namespace
}  // namespace m3xu::gemm
