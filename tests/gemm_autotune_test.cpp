// Tests for the persistent autotuner: deterministic search under a
// synthetic cost model, TuneCache round-trips through the JSON file,
// and rejection of corrupt, tampered, version-mismatched, or invalid
// cache content (a damaged cache must cost a re-tune, never a wrong
// or unvalidated tile config).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "gemm/autotune.hpp"
#include "gemm/tiled_driver.hpp"

namespace m3xu::gemm {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool same_tile(const TileConfig& a, const TileConfig& b) {
  return a.block_m == b.block_m && a.block_n == b.block_n &&
         a.block_k == b.block_k && a.warp_m == b.warp_m &&
         a.warp_n == b.warp_n;
}

/// Synthetic cost: prefers one specific candidate, deterministic across
/// runs, so search outcomes do not depend on wall-clock noise.
double synthetic_cost(const TileConfig& tile) {
  return (tile.block_m == 32 && tile.block_n == 32) ? 1.0 : 2.0;
}

TEST(CpuSignature, NonEmptyAndStable) {
  const std::string sig = cpu_signature();
  EXPECT_FALSE(sig.empty());
  EXPECT_EQ(sig, cpu_signature());
}

TEST(DefaultCandidates, StartWithDefaultAndAllValid) {
  const PlanKey key{256, 256, 256, false};
  for (const bool quick : {false, true}) {
    const std::vector<TileConfig> cands = default_candidates(key, quick);
    ASSERT_FALSE(cands.empty());
    EXPECT_TRUE(same_tile(cands.front(), TileConfig{}));
    for (const TileConfig& tile : cands) {
      EXPECT_TRUE(tile.valid());
    }
  }
  EXPECT_LT(default_candidates(key, true).size(),
            default_candidates(key, false).size());
}

TEST(Autotune, DeterministicUnderFixedSeedAndCostModel) {
  const PlanKey key{64, 64, 64, false};
  AutotuneOptions opts;
  opts.quick = true;
  opts.reps = 1;
  opts.measure = &synthetic_cost;

  const AutotuneResult first = autotune(core::M3xuConfig{}, key, opts);
  const AutotuneResult second = autotune(core::M3xuConfig{}, key, opts);
  EXPECT_TRUE(same_tile(first.best, second.best));
  EXPECT_EQ(first.candidates_tried, second.candidates_tried);
  EXPECT_EQ(first.bit_mismatches, 0);
  EXPECT_EQ(second.bit_mismatches, 0);
  // The synthetic cost singles out the 32x32 block candidate.
  EXPECT_EQ(first.best.block_m, 32);
  EXPECT_EQ(first.best.block_n, 32);
}

TEST(Autotune, EveryQuickCandidateIsBitIdentical) {
  // The gate itself: no candidate in the default quick set may change
  // result bits for either dtype.
  AutotuneOptions opts;
  opts.quick = true;
  opts.reps = 1;
  opts.measure = &synthetic_cost;
  const AutotuneResult sg = autotune(core::M3xuConfig{}, {96, 80, 96, false},
                                     opts);
  EXPECT_EQ(sg.bit_mismatches, 0);
  EXPECT_GT(sg.candidates_tried, 0);
  const AutotuneResult cg = autotune(core::M3xuConfig{}, {48, 48, 48, true},
                                     opts);
  EXPECT_EQ(cg.bit_mismatches, 0);
  EXPECT_GT(cg.candidates_tried, 0);
}

TEST(TuneCache, RoundTripsThroughTheFile) {
  const std::string path = temp_path("tune_roundtrip.json");
  const PlanKey key{96, 96, 96, false};
  const TileConfig tile{32, 32, 32, 16, 16};

  TuneCache writer(path);
  writer.store(key, cpu_signature(), tile, 0.5);
  ASSERT_TRUE(writer.save());

  TuneCache reader(path);
  ASSERT_TRUE(reader.load());
  EXPECT_EQ(reader.size(), 1u);
  EXPECT_EQ(reader.rejected(), 0u);
  const std::optional<TileConfig> hit = reader.lookup(key, cpu_signature());
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(same_tile(*hit, tile));
  // Different shape or signature: no hit.
  EXPECT_FALSE(reader.lookup({96, 96, 97, false}, cpu_signature()));
  EXPECT_FALSE(reader.lookup(key, "other-host"));
}

TEST(TuneCache, SecondAutotuneIsServedFromCache) {
  const std::string path = temp_path("tune_hit.json");
  const PlanKey key{64, 64, 64, false};
  AutotuneOptions opts;
  opts.quick = true;
  opts.reps = 1;
  opts.measure = &synthetic_cost;

  TuneCache cache(path);
  const AutotuneResult tuned = autotune(core::M3xuConfig{}, key, opts, &cache);
  EXPECT_FALSE(tuned.from_cache);

  TuneCache fresh(path);
  ASSERT_TRUE(fresh.load());
  const AutotuneResult reloaded =
      autotune(core::M3xuConfig{}, key, opts, &fresh);
  EXPECT_TRUE(reloaded.from_cache);
  EXPECT_TRUE(same_tile(reloaded.best, tuned.best));
}

TEST(TuneCache, GarbageFileLoadsEmptyAndRetunes) {
  const std::string path = temp_path("tune_garbage.json");
  write_file(path, "this is not json {{{");

  TuneCache cache(path);
  EXPECT_FALSE(cache.load());
  EXPECT_EQ(cache.size(), 0u);

  // A corrupt cache must not block tuning; the re-tune overwrites it.
  AutotuneOptions opts;
  opts.quick = true;
  opts.reps = 1;
  opts.measure = &synthetic_cost;
  const AutotuneResult result =
      autotune(core::M3xuConfig{}, {64, 64, 64, false}, opts, &cache);
  EXPECT_FALSE(result.from_cache);
  EXPECT_EQ(cache.size(), 1u);

  TuneCache rewritten(path);
  EXPECT_TRUE(rewritten.load());
  EXPECT_EQ(rewritten.size(), 1u);
}

TEST(TuneCache, SchemaVersionMismatchIsRejectedWhole) {
  const std::string path = temp_path("tune_schema.json");
  const PlanKey key{96, 96, 96, false};
  TuneCache writer(path);
  writer.store(key, cpu_signature(), TileConfig{}, 0.5);
  ASSERT_TRUE(writer.save());

  std::string text = read_file(path);
  const std::string want = "\"schema_version\": 1";
  const std::size_t pos = text.find(want);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, want.size(), "\"schema_version\": 999");
  write_file(path, text);

  TuneCache reader(path);
  EXPECT_FALSE(reader.load());
  EXPECT_EQ(reader.size(), 0u);
}

TEST(TuneCache, TamperedTileFailsItsChecksum) {
  const std::string path = temp_path("tune_tamper.json");
  const PlanKey key{96, 96, 96, false};
  const TileConfig tile{64, 64, 32, 32, 32};
  TuneCache writer(path);
  writer.store(key, cpu_signature(), tile, 0.5);
  ASSERT_TRUE(writer.save());

  // Flip block_m in the serialized entry without updating the checksum.
  std::string text = read_file(path);
  const std::string want = "\"block_m\": 64";
  const std::size_t pos = text.find(want);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, want.size(), "\"block_m\": 128");
  write_file(path, text);

  TuneCache reader(path);
  EXPECT_TRUE(reader.load());  // document itself is fine
  EXPECT_EQ(reader.size(), 0u);
  EXPECT_EQ(reader.rejected(), 1u);
  EXPECT_FALSE(reader.lookup(key, cpu_signature()));
}

TEST(TuneCache, InvalidTileIsRejectedEvenWithValidChecksum) {
  // An attacker-free failure mode: an entry written by a buggy tool
  // could carry a checksum that matches an unusable tile. The validator
  // must still reject it - the checksum proves integrity, not validity.
  const std::string path = temp_path("tune_invalid_tile.json");
  const PlanKey key{64, 64, 64, false};
  TileConfig bad{};
  bad.block_m = 0;
  const std::uint64_t sum =
      TuneCache::entry_checksum(key, cpu_signature(), bad);

  std::ostringstream doc;
  doc << "{\n  \"schema_version\": 1,\n  \"entries\": [\n    {\n"
      << "      \"key\": \"sgemm.64x64x64\",\n"
      << "      \"m\": 64,\n      \"n\": 64,\n      \"k\": 64,\n"
      << "      \"cplx\": false,\n"
      << "      \"cpu\": \"" << cpu_signature() << "\",\n"
      << "      \"tile\": {\n"
      << "        \"block_m\": " << bad.block_m << ",\n"
      << "        \"block_n\": " << bad.block_n << ",\n"
      << "        \"block_k\": " << bad.block_k << ",\n"
      << "        \"warp_m\": " << bad.warp_m << ",\n"
      << "        \"warp_n\": " << bad.warp_n << "\n      },\n"
      << "      \"seconds\": 0.5,\n"
      << "      \"checksum\": \"" << sum << "\"\n    }\n  ]\n}\n";
  write_file(path, doc.str());

  TuneCache reader(path);
  EXPECT_TRUE(reader.load());
  EXPECT_EQ(reader.size(), 0u);
  EXPECT_EQ(reader.rejected(), 1u);
}

TEST(TuneCache, NumericChecksumIsRejected) {
  // Checksums are serialized as strings because the JSON number path
  // goes through double and loses bits above 2^53. An entry carrying a
  // numeric checksum is from a foreign writer; drop it.
  const std::string path = temp_path("tune_numeric_checksum.json");
  const PlanKey key{96, 96, 96, false};
  TuneCache writer(path);
  writer.store(key, cpu_signature(), TileConfig{}, 0.5);
  ASSERT_TRUE(writer.save());

  std::string text = read_file(path);
  const std::size_t open = text.find("\"checksum\": \"");
  ASSERT_NE(open, std::string::npos);
  const std::size_t quote = open + std::string("\"checksum\": ").size();
  const std::size_t close = text.find('"', quote + 1);
  ASSERT_NE(close, std::string::npos);
  text.erase(close, 1);
  text.erase(quote, 1);
  write_file(path, text);

  TuneCache reader(path);
  EXPECT_TRUE(reader.load());
  EXPECT_EQ(reader.rejected(), 1u);
}

}  // namespace
}  // namespace m3xu::gemm
