// Tests for the checksummed LRU prepacked-B panel cache (PackCache):
// LRU eviction order, corruption detection -> drop -> repack, hit/miss
// accounting, bit-identical cached-vs-uncached GEMM results through the
// driver, and concurrent multi-tenant access (tsan-labeled).
#include <gtest/gtest.h>

#include <atomic>
#include <complex>
#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/mxu.hpp"
#include "core/packed_panel.hpp"
#include "gemm/matrix.hpp"
#include "gemm/panel_cache.hpp"
#include "gemm/recovery.hpp"
#include "gemm/tiled_driver.hpp"
#include "serve/pack_cache.hpp"
#include "telemetry/telemetry.hpp"

namespace m3xu::serve {
namespace {

/// A small deterministic FP32 B panel packed from ramp data; `salt`
/// varies the contents per key so distinct panels stay distinct.
core::PackedPanelFp32B make_panel(int salt) {
  const int k = 8, cols = 4;
  std::vector<float> b(static_cast<std::size_t>(k) * cols);
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = 0.25f * static_cast<float>(i + 1) + static_cast<float>(salt);
  }
  core::PackedPanelFp32B panel;
  core::pack_fp32_b(b.data(), cols, k, cols, panel);
  return panel;
}

gemm::PanelKey key_for(std::uint64_t b_key, int k0 = 0) {
  return gemm::PanelKey{b_key, k0, 0, 8, 4, false};
}

bool lanes_equal(const std::vector<core::LaneOperand>& x,
                 const std::vector<core::LaneOperand>& y) {
  if (x.size() != y.size()) return false;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i].cls != y[i].cls || x[i].sign != y[i].sign ||
        x[i].exp2 != y[i].exp2 || x[i].sig != y[i].sig) {
      return false;
    }
  }
  return true;
}

TEST(PackCache, RoundTripsAPanelBitExactly) {
  PackCache cache(8);
  const core::PackedPanelFp32B panel = make_panel(1);
  cache.put_fp32(key_for(1), panel);
  core::PackedPanelFp32B out;
  ASSERT_TRUE(cache.get_fp32(key_for(1), &out));
  EXPECT_EQ(out.k, panel.k);
  EXPECT_EQ(out.cols, panel.cols);
  EXPECT_EQ(out.has_special, panel.has_special);
  EXPECT_TRUE(lanes_equal(out.like, panel.like));
  EXPECT_TRUE(lanes_equal(out.swapped, panel.swapped));
  EXPECT_TRUE(lanes_equal(out.cls, panel.cls));
  EXPECT_EQ(out.special, panel.special);
}

TEST(PackCache, MissOnUnknownKeyAndCountersTrack) {
  PackCache cache(8);
  core::PackedPanelFp32B out;
  EXPECT_FALSE(cache.get_fp32(key_for(42), &out));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  cache.put_fp32(key_for(42), make_panel(0));
  EXPECT_TRUE(cache.get_fp32(key_for(42), &out));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PackCache, EvictsLeastRecentlyUsedFirst) {
  PackCache cache(3);
  cache.put_fp32(key_for(1), make_panel(1));
  cache.put_fp32(key_for(2), make_panel(2));
  cache.put_fp32(key_for(3), make_panel(3));
  ASSERT_EQ(cache.size(), 3u);
  // Touch key 1 so key 2 becomes the LRU victim.
  core::PackedPanelFp32B out;
  ASSERT_TRUE(cache.get_fp32(key_for(1), &out));
  cache.put_fp32(key_for(4), make_panel(4));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.get_fp32(key_for(1), &out));
  EXPECT_FALSE(cache.get_fp32(key_for(2), &out));  // evicted
  EXPECT_TRUE(cache.get_fp32(key_for(3), &out));
  EXPECT_TRUE(cache.get_fp32(key_for(4), &out));
}

TEST(PackCache, ReinsertRefreshesInsteadOfEvicting) {
  PackCache cache(2);
  cache.put_fp32(key_for(1), make_panel(1));
  cache.put_fp32(key_for(2), make_panel(2));
  // Re-putting an existing key replaces in place: no eviction.
  cache.put_fp32(key_for(1), make_panel(9));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
  core::PackedPanelFp32B out;
  ASSERT_TRUE(cache.get_fp32(key_for(1), &out));
  EXPECT_TRUE(lanes_equal(out.like, make_panel(9).like));
}

TEST(PackCache, CorruptedEntryIsDroppedNotServed) {
  PackCache cache(8);
  cache.put_fp32(key_for(7), make_panel(7));
  ASSERT_TRUE(cache.corrupt_one(7));
  core::PackedPanelFp32B out;
  // The checksum trips: the hit becomes a miss and the entry is gone.
  EXPECT_FALSE(cache.get_fp32(key_for(7), &out));
  EXPECT_EQ(cache.corrupt_dropped(), 1u);
  EXPECT_EQ(cache.size(), 0u);
  // A repack (what the driver does on the miss) restores service.
  cache.put_fp32(key_for(7), make_panel(7));
  ASSERT_TRUE(cache.get_fp32(key_for(7), &out));
  EXPECT_TRUE(lanes_equal(out.like, make_panel(7).like));
}

TEST(PackCache, CorruptionServedWhenVerifyDisabled) {
  // Documents the trade: verify=false skips the integrity re-check, so
  // the corrupted panel is served. Serving keeps verify on.
  PackCache cache(8, /*verify=*/false);
  cache.put_fp32(key_for(7), make_panel(7));
  ASSERT_TRUE(cache.corrupt_one(7));
  core::PackedPanelFp32B out;
  EXPECT_TRUE(cache.get_fp32(key_for(7), &out));
  EXPECT_FALSE(lanes_equal(out.like, make_panel(7).like));
  EXPECT_EQ(cache.corrupt_dropped(), 0u);
}

TEST(PackCache, ComplexPanelsKeyedSeparatelyFromReal) {
  PackCache cache(8);
  cache.put_fp32(key_for(1), make_panel(1));
  gemm::PanelKey ckey = key_for(1);
  ckey.cplx = true;
  core::PackedPanelFp32cB cout_panel;
  EXPECT_FALSE(cache.get_fp32c(ckey, &cout_panel));

  const int k = 8, cols = 4;
  std::vector<std::complex<float>> cb(static_cast<std::size_t>(k) * cols);
  for (std::size_t i = 0; i < cb.size(); ++i) {
    cb[i] = {0.5f * static_cast<float>(i + 1), -1.5f};
  }
  core::PackedPanelFp32cB cpanel;
  core::pack_fp32c_b(cb.data(), cols, k, cols, cpanel);
  cache.put_fp32c(ckey, cpanel);
  ASSERT_TRUE(cache.get_fp32c(ckey, &cout_panel));
  EXPECT_TRUE(lanes_equal(cout_panel.real_like, cpanel.real_like));
  EXPECT_TRUE(lanes_equal(cout_panel.imag_like, cpanel.imag_like));

  // Corruption detection covers the complex panel type too.
  ASSERT_TRUE(cache.corrupt_one(1));
  cache.clear();
}

#if M3XU_TELEMETRY_ENABLED
TEST(PackCache, TelemetryMirrorsCounters) {
  const telemetry::Snapshot before = telemetry::snapshot();
  PackCache cache(2);
  core::PackedPanelFp32B out;
  cache.get_fp32(key_for(1), &out);       // miss
  cache.put_fp32(key_for(1), make_panel(1));
  cache.get_fp32(key_for(1), &out);       // hit
  cache.put_fp32(key_for(2), make_panel(2));
  cache.put_fp32(key_for(3), make_panel(3));  // evicts
  ASSERT_TRUE(cache.corrupt_one(3));
  cache.get_fp32(key_for(3), &out);       // corrupt drop
  const telemetry::Snapshot after = telemetry::snapshot();
  EXPECT_GE(after.counter_delta(before, "serve.pack_cache.misses"), 2u);
  EXPECT_GE(after.counter_delta(before, "serve.pack_cache.hits"), 1u);
  EXPECT_GE(after.counter_delta(before, "serve.pack_cache.evictions"), 1u);
  EXPECT_GE(after.counter_delta(before, "serve.pack_cache.corrupt_dropped"),
            1u);
}
#endif

/// End-to-end bit-identity: the same GEMM run uncached, cache-cold, and
/// cache-warm must produce byte-identical C. This is the property that
/// licenses sharing packed panels across tenants at all.
TEST(PackCacheDriver, CachedRunsAreBitIdenticalToUncached) {
  const int m = 96, n = 80, k = 72;
  gemm::Matrix<float> a(m, k), b(k, n), c0(m, n);
  Rng rng(101);
  gemm::fill_random(a, rng);
  gemm::fill_random(b, rng);
  gemm::fill_random(c0, rng);

  core::M3xuConfig ecfg;
  const core::M3xuEngine engine(ecfg);
  const gemm::TileConfig tile{32, 32, 32, 16, 16};
  gemm::AbftConfig abft;
  abft.enable = true;
  gemm::RecoveryPolicy policy;
  policy.demote = true;

  gemm::Matrix<float> c_plain = c0;
  gemm::tiled_sgemm(engine, tile, abft, policy, gemm::ExecConfig{}, a, b,
                    c_plain);

  PackCache cache(64);
  gemm::ExecConfig exec;
  exec.b_cache = &cache;
  exec.b_key = 0xB0B;

  gemm::Matrix<float> c_cold = c0;
  gemm::tiled_sgemm(engine, tile, abft, policy, exec, a, b, c_cold);
  EXPECT_GT(cache.size(), 0u);  // the cold run populated the cache

  gemm::Matrix<float> c_warm = c0;
  gemm::tiled_sgemm(engine, tile, abft, policy, exec, a, b, c_warm);
  EXPECT_GT(cache.hits(), 0u);  // the warm run actually hit

  ASSERT_EQ(std::memcmp(c_plain.data(), c_cold.data(),
                        sizeof(float) * static_cast<std::size_t>(m) * n),
            0);
  ASSERT_EQ(std::memcmp(c_plain.data(), c_warm.data(),
                        sizeof(float) * static_cast<std::size_t>(m) * n),
            0);
}

TEST(PackCacheDriver, ComplexCachedRunsAreBitIdenticalToUncached) {
  const int m = 48, n = 40, k = 36;
  gemm::Matrix<std::complex<float>> a(m, k), b(k, n), c0(m, n);
  Rng rng(11);
  gemm::fill_random(a, rng);
  gemm::fill_random(b, rng);
  gemm::fill_random(c0, rng);

  core::M3xuConfig ecfg;
  const core::M3xuEngine engine(ecfg);
  const gemm::TileConfig tile{16, 16, 32, 16, 16};
  gemm::AbftConfig abft;
  abft.enable = true;
  gemm::RecoveryPolicy policy;
  policy.demote = true;

  gemm::Matrix<std::complex<float>> c_plain = c0;
  gemm::tiled_cgemm(engine, tile, abft, policy, gemm::ExecConfig{}, a, b,
                    c_plain);

  PackCache cache(64);
  gemm::ExecConfig exec;
  exec.b_cache = &cache;
  exec.b_key = 0xC0C;

  gemm::Matrix<std::complex<float>> c_cold = c0;
  gemm::tiled_cgemm(engine, tile, abft, policy, exec, a, b, c_cold);
  gemm::Matrix<std::complex<float>> c_warm = c0;
  gemm::tiled_cgemm(engine, tile, abft, policy, exec, a, b, c_warm);
  EXPECT_GT(cache.hits(), 0u);

  ASSERT_EQ(std::memcmp(c_plain.data(), c_cold.data(),
                        sizeof(std::complex<float>) *
                            static_cast<std::size_t>(m) * n),
            0);
  ASSERT_EQ(std::memcmp(c_plain.data(), c_warm.data(),
                        sizeof(std::complex<float>) *
                            static_cast<std::size_t>(m) * n),
            0);
}

/// A corrupted shared panel must never change results: the checksum
/// converts the would-be wrong answer into a repack.
TEST(PackCacheDriver, CorruptionBetweenRunsStillYieldsBitIdenticalResult) {
  const int m = 64, n = 64, k = 64;
  gemm::Matrix<float> a(m, k), b(k, n), c0(m, n);
  Rng rng(7);
  gemm::fill_random(a, rng);
  gemm::fill_random(b, rng);
  gemm::fill_random(c0, rng);

  core::M3xuConfig ecfg;
  const core::M3xuEngine engine(ecfg);
  const gemm::TileConfig tile{32, 32, 32, 16, 16};

  gemm::Matrix<float> c_plain = c0;
  gemm::tiled_sgemm(engine, tile, gemm::AbftConfig{}, gemm::RecoveryPolicy{},
                    gemm::ExecConfig{}, a, b, c_plain);

  PackCache cache(64);
  gemm::ExecConfig exec;
  exec.b_cache = &cache;
  exec.b_key = 0xDEAD;
  gemm::Matrix<float> c_cold = c0;
  gemm::tiled_sgemm(engine, tile, gemm::AbftConfig{}, gemm::RecoveryPolicy{},
                    exec, a, b, c_cold);
  ASSERT_TRUE(cache.corrupt_one(0xDEAD));
  const std::uint64_t drops_before = cache.corrupt_dropped();
  gemm::Matrix<float> c_after = c0;
  gemm::tiled_sgemm(engine, tile, gemm::AbftConfig{}, gemm::RecoveryPolicy{},
                    exec, a, b, c_after);
  EXPECT_GT(cache.corrupt_dropped(), drops_before);
  ASSERT_EQ(std::memcmp(c_plain.data(), c_after.data(),
                        sizeof(float) * static_cast<std::size_t>(m) * n),
            0);
}

/// Concurrent tenants hammering overlapping key ranges (tsan target):
/// correctness here is "no data race, every hit returns an intact
/// panel" - corruption injection races against readers on purpose.
TEST(PackCacheConcurrency, ConcurrentTenantsGetConsistentPanels) {
  PackCache cache(16);
  constexpr int kThreads = 6;
  constexpr int kRounds = 200;
  std::atomic<bool> fail{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      core::PackedPanelFp32B out;
      for (int r = 0; r < kRounds; ++r) {
        const std::uint64_t b_key =
            static_cast<std::uint64_t>((t + r) % 8 + 1);
        const gemm::PanelKey key = key_for(static_cast<int>(b_key));
        if (cache.get_fp32(key, &out)) {
          // A served panel is always intact (checksum-verified) and
          // internally consistent with its key contents.
          if (!lanes_equal(out.like,
                           make_panel(static_cast<int>(b_key)).like)) {
            fail = true;
          }
        } else {
          cache.put_fp32(key, make_panel(static_cast<int>(b_key)));
        }
        if (t == 0 && r % 50 == 13) {
          cache.corrupt_one(b_key);  // chaos: readers must survive it
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(fail.load());
  EXPECT_GT(cache.hits(), 0u);
}

}  // namespace
}  // namespace m3xu::serve
