// Second-tier property tests for the soft-float layer: exhaustive TF32
// round-trips, RNE fuzzing against a wide-integer oracle, accumulator
// fuzzing against __float128, and format-conversion monotonicity.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "fp/exact_accumulator.hpp"
#include "fp/ext_float.hpp"
#include "fp/format.hpp"
#include "fp/unpacked.hpp"

namespace m3xu::fp {
namespace {

TEST(Tf32Exhaustive, AllPayloadsRoundTrip) {
  // TF32 has 2^19 payloads: cheap to sweep completely.
  const std::uint64_t count = std::uint64_t{1} << kTf32.total_bits();
  for (std::uint64_t payload = 0; payload < count; ++payload) {
    const Unpacked u = unpack(payload, kTf32);
    if (u.is_nan()) continue;
    EXPECT_EQ(pack(u, kTf32), payload);
    // Widening to FP32 and re-rounding is the identity.
    const float f = pack_to_float(u);
    EXPECT_EQ(pack(unpack(f), kTf32), payload);
  }
}

TEST(RneShiftFuzz, MatchesWideIntegerOracle) {
  // Oracle: compute round-to-nearest-even of (sig / 2^r) using 128-bit
  // arithmetic: floor plus the tie/round-up rule spelled out directly.
  Rng rng(201);
  for (int trial = 0; trial < 2'000'000; ++trial) {
    const std::uint64_t sig = rng.next_u64() >> 1;  // keep bit63 clear
    const int r = static_cast<int>(rng.next_below(66));
    std::uint64_t expected;
    if (r == 0) {
      expected = sig;
    } else if (r > 64) {
      expected = 0;
    } else {
      const unsigned __int128 wide = sig;
      const unsigned __int128 half = static_cast<unsigned __int128>(1)
                                     << (r - 1);
      const unsigned __int128 rem =
          wide & (((static_cast<unsigned __int128>(1) << r)) - 1);
      std::uint64_t floor_val =
          static_cast<std::uint64_t>(r >= 64 ? 0 : (sig >> r));
      if (rem > half || (rem == half && (floor_val & 1))) ++floor_val;
      expected = floor_val;
    }
    EXPECT_EQ(rne_shift_right(sig, r), expected) << sig << " >> " << r;
  }
}

TEST(PackMonotonicity, ConversionPreservesOrder) {
  // Rounding to a coarser format is monotone: a <= b implies
  // round(a) <= round(b). Check across random pairs for FP16 and BF16.
  Rng rng(202);
  for (const FloatFormat& fmt : {kFp16, kBf16, kTf32}) {
    for (int i = 0; i < 200'000; ++i) {
      float a = rng.any_finite_float();
      float b = rng.any_finite_float();
      if (a > b) std::swap(a, b);
      const float ra = round_to_format(a, fmt);
      const float rb = round_to_format(b, fmt);
      EXPECT_LE(ra, rb) << a << " " << b;
    }
  }
}

TEST(PackSignSymmetry, NegationCommutesWithRounding) {
  Rng rng(203);
  for (int i = 0; i < 200'000; ++i) {
    const float f = rng.any_finite_float();
    for (const FloatFormat& fmt : {kFp16, kBf16, kTf32}) {
      EXPECT_EQ(bits_of(round_to_format(-f, fmt)),
                bits_of(-round_to_format(f, fmt)));
    }
  }
}

TEST(AccumulatorFuzz, RandomSumsMatchQuadWhereExact) {
  // Sum 32 values whose exponents stay within a 100-bit window: exact
  // in __float128, so the accumulator must agree after rounding.
  Rng rng(204);
  for (int trial = 0; trial < 20'000; ++trial) {
    ExactAccumulator acc;
    __float128 ref = 0;
    for (int i = 0; i < 32; ++i) {
      const int e = static_cast<int>(rng.next_below(40)) - 20;
      const float v = std::ldexp(rng.uniform(-1.0f, 1.0f), e);
      acc.add_double(v);
      ref += static_cast<__float128>(v);
    }
    EXPECT_EQ(acc.to_double(), static_cast<double>(ref));
  }
}

TEST(AccumulatorFuzz, ShuffledAdditionOrderIsIrrelevant) {
  // The exact accumulator is a commutative monoid: any permutation of
  // additions yields bit-identical state.
  Rng rng(205);
  for (int trial = 0; trial < 5'000; ++trial) {
    std::vector<float> values(24);
    for (auto& v : values) v = rng.any_finite_float();
    ExactAccumulator fwd, rev;
    for (std::size_t i = 0; i < values.size(); ++i) {
      fwd.add_double(values[i]);
      rev.add_double(values[values.size() - 1 - i]);
    }
    EXPECT_EQ(bits_of(fwd.to_double()), bits_of(rev.to_double()));
    EXPECT_EQ(bits_of(fwd.to_float()), bits_of(rev.to_float()));
  }
}

TEST(AccumulatorPayloads, Fp16AndBf16RoundingsAreCorrect) {
  // round_to_payload must deliver single-rounded results for narrow
  // formats too (used as conversion oracles elsewhere). Brute-force
  // check against scanning all format values.
  Rng rng(206);
  for (int trial = 0; trial < 300; ++trial) {
    const double d = std::ldexp(rng.next_double() * 2.0 - 1.0,
                                static_cast<int>(rng.next_below(36)) - 20);
    ExactAccumulator acc;
    acc.add_double(d);
    const std::uint64_t got = acc.round_to_payload(kFp16);
    // Oracle: nearest fp16 by scanning (ties -> even payload).
    std::uint64_t best = 0;
    double best_err = HUGE_VAL;
    for (std::uint64_t p = 0; p < (1u << 16); ++p) {
      const Unpacked u = unpack(p, kFp16);
      if (u.is_nan() || u.is_inf()) continue;
      const double err = std::fabs(pack_to_double(u) - d);
      if (err < best_err ||
          (err == best_err && (p & 1) == 0 &&
           pack_to_double(u) == pack_to_double(unpack(best, kFp16)))) {
        best_err = err;
        best = p;
      }
    }
    const double got_val = pack_to_double(unpack(got, kFp16));
    EXPECT_LE(std::fabs(got_val - d), best_err + 0.0) << d;
  }
}

TEST(AccumulatorPayloads, AllFormatsMatchRoundToFormat) {
  // For values already representable as floats, round_to_payload must
  // agree with the pack()-based conversion for every format.
  Rng rng(210);
  for (int i = 0; i < 100'000; ++i) {
    const float f = rng.any_finite_float();
    ExactAccumulator acc;
    acc.add_double(f);
    for (const FloatFormat& fmt : {kFp16, kBf16, kTf32, kFp8E4M3,
                                   kFp8E5M2}) {
      EXPECT_EQ(acc.round_to_payload(fmt), pack(unpack(f), fmt))
          << f << " fmt(" << fmt.exp_bits << "," << fmt.mant_bits << ")";
    }
  }
}

TEST(ExtFloatProperties, PlusIsCommutative) {
  Rng rng(207);
  for (int trial = 0; trial < 100'000; ++trial) {
    const float a = rng.scaled_float();
    const float b = rng.scaled_float();
    for (int prec : {24, 37, 48}) {
      const ExtFloat x = ExtFloat::from_float(a, prec).plus(unpack(b));
      const ExtFloat y = ExtFloat::from_float(b, prec).plus(unpack(a));
      EXPECT_EQ(bits_of(x.to_double()), bits_of(y.to_double()));
    }
  }
}

TEST(ExtFloatProperties, RoundingIsIdempotent) {
  Rng rng(208);
  for (int trial = 0; trial < 100'000; ++trial) {
    const Unpacked u = unpack(rng.any_finite_float());
    for (int prec : {11, 24, 48}) {
      const Unpacked once = round_unpacked_to_precision(u, prec);
      const Unpacked twice = round_unpacked_to_precision(once, prec);
      EXPECT_EQ(once.sig, twice.sig);
      EXPECT_EQ(once.exp, twice.exp);
    }
  }
}

TEST(ExtFloatProperties, WiderPrecisionNeverFurtherFromExact) {
  Rng rng(209);
  for (int trial = 0; trial < 50'000; ++trial) {
    const double exact = rng.next_double() * 100.0 - 50.0;
    const Unpacked u = unpack(exact);
    double prev_err = HUGE_VAL;
    for (int prec : {8, 16, 24, 32, 48}) {
      const double rounded =
          pack_to_double(round_unpacked_to_precision(u, prec));
      const double err = std::fabs(rounded - exact);
      EXPECT_LE(err, prev_err);
      prev_err = err;
    }
  }
}

}  // namespace
}  // namespace m3xu::fp
