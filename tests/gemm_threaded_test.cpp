// Threaded tiled-driver determinism: partitioning the tile grid over a
// ThreadPool is a throughput lever only. For every route rung and both
// dtypes, the result must be bit-identical whatever pool the caller
// supplies (1, 2, or 8 threads via ExecConfig::pool / ExecRails::pool,
// or the process-global pool), identical across repeated runs on the
// same pool (no schedule-dependent accumulation order), and identical
// with the ABFT guard on. Runs under `ctest -L tsan` in the
// M3XU_SANITIZE=thread CI job, where the per-thread staging scratch
// and the shared TiledGemmStats reduction are the interesting surface.
#include <gtest/gtest.h>

#include <complex>
#include <cstring>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "gemm/matrix.hpp"
#include "gemm/plan.hpp"
#include "gemm/tiled_driver.hpp"

namespace m3xu::gemm {
namespace {

template <typename T>
struct Problem {
  Matrix<T> a, b, c;
};

template <typename T>
Problem<T> make(int m, int n, int k, std::uint64_t seed) {
  Problem<T> p{Matrix<T>(m, k), Matrix<T>(k, n), Matrix<T>(m, n)};
  Rng rng(seed);
  fill_random(p.a, rng);
  fill_random(p.b, rng);
  fill_random(p.c, rng);
  return p;
}

template <typename T>
bool bits_equal(const Matrix<T>& x, const Matrix<T>& y) {
  return x.size() == y.size() &&
         std::memcmp(x.data(), y.data(), x.size() * sizeof(T)) == 0;
}

std::vector<std::pair<const char*, core::M3xuConfig>> route_configs() {
  std::vector<std::pair<const char*, core::M3xuConfig>> out;
  out.emplace_back("microkernel", core::M3xuConfig{});
  core::M3xuConfig nomk;
  nomk.enable_microkernel = false;
  out.emplace_back("packed_fused", nomk);
  core::M3xuConfig generic;
  generic.force_generic = true;
  out.emplace_back("generic", generic);
  return out;
}

// A tile shape that yields a multi-tile grid on the test problems, so
// the pool actually partitions work (2x2 tiles and a K mainloop).
const TileConfig kTile{64, 64, 16, 32, 32};

constexpr int kPoolSizes[] = {1, 2, 8};

template <typename T>
void run_adhoc(const core::M3xuEngine& engine, const AbftConfig& abft,
               ThreadPool* pool, const Problem<T>& p, Matrix<T>& c) {
  ExecConfig exec;
  exec.pool = pool;
  c = p.c;
  if constexpr (std::is_same_v<T, float>) {
    tiled_sgemm(engine, kTile, abft, RecoveryPolicy{}, exec, p.a, p.b, c);
  } else {
    tiled_cgemm(engine, kTile, abft, RecoveryPolicy{}, exec, p.a, p.b, c);
  }
}

template <typename T>
void expect_pool_invariance(const char* route, const core::M3xuConfig& cfg,
                            const AbftConfig& abft, const Problem<T>& p) {
  SCOPED_TRACE(route);
  const core::M3xuEngine engine(cfg);

  // Reference: the global pool (whatever size the host gave it).
  Matrix<T> ref(p.c.rows(), p.c.cols());
  run_adhoc(engine, abft, nullptr, p, ref);

  for (const int threads : kPoolSizes) {
    SCOPED_TRACE(threads);
    ThreadPool pool(static_cast<std::size_t>(threads));
    Matrix<T> c1(p.c.rows(), p.c.cols());
    Matrix<T> c2(p.c.rows(), p.c.cols());
    run_adhoc(engine, abft, &pool, p, c1);
    // Second run on the same (already warm) pool: chunk claiming order
    // differs run to run; the bits must not.
    run_adhoc(engine, abft, &pool, p, c2);
    EXPECT_TRUE(bits_equal(c1, ref)) << "pool size " << threads;
    EXPECT_TRUE(bits_equal(c1, c2)) << "repeat on pool size " << threads;
  }
}

TEST(ThreadedDriver, SgemmBitIdenticalAcrossPoolSizes) {
  const Problem<float> p = make<float>(100, 90, 130, 901);
  for (const auto& [route, cfg] : route_configs()) {
    expect_pool_invariance(route, cfg, AbftConfig{}, p);
  }
}

TEST(ThreadedDriver, CgemmBitIdenticalAcrossPoolSizes) {
  const Problem<std::complex<float>> p =
      make<std::complex<float>>(80, 70, 72, 902);
  for (const auto& [route, cfg] : route_configs()) {
    expect_pool_invariance(route, cfg, AbftConfig{}, p);
  }
}

TEST(ThreadedDriver, AbftGuardedRunsStayPoolInvariant) {
  // The guard adds per-tile checksum verification (and its own
  // temporary buffers) to each worker; fault-free it must stay a pure
  // observer at every pool size.
  const Problem<float> p = make<float>(96, 96, 96, 903);
  AbftConfig abft;
  abft.enable = true;
  expect_pool_invariance("microkernel", core::M3xuConfig{}, abft, p);
}

TEST(ThreadedDriver, PlanExecuteHonorsRailsPool) {
  // The plan layer forwards ExecRails::pool into the driver; results
  // must match the global-pool execute bitwise at every size, for both
  // dtypes, including back-to-back executes on one pool.
  const Problem<float> ps = make<float>(100, 90, 130, 904);
  const Problem<std::complex<float>> pc =
      make<std::complex<float>>(80, 70, 72, 905);
  PlanOptions opts;
  opts.tile = kTile;

  const GemmPlan splan = GemmPlan::compile(
      core::M3xuConfig{}, {ps.a.rows(), ps.b.cols(), ps.a.cols(), false},
      opts);
  const GemmPlan cplan = GemmPlan::compile(
      core::M3xuConfig{}, {pc.a.rows(), pc.b.cols(), pc.a.cols(), true},
      opts);

  Matrix<float> sref = ps.c;
  splan.execute(ps.a, ps.b, sref);
  Matrix<std::complex<float>> cref = pc.c;
  cplan.execute(pc.a, pc.b, cref);

  for (const int threads : kPoolSizes) {
    SCOPED_TRACE(threads);
    ThreadPool pool(static_cast<std::size_t>(threads));
    ExecRails rails;
    rails.pool = &pool;
    for (int rep = 0; rep < 2; ++rep) {
      Matrix<float> cs = ps.c;
      splan.execute(ps.a, ps.b, cs, rails);
      EXPECT_TRUE(bits_equal(cs, sref)) << "sgemm rep " << rep;
      Matrix<std::complex<float>> cc = pc.c;
      cplan.execute(pc.a, pc.b, cc, rails);
      EXPECT_TRUE(bits_equal(cc, cref)) << "cgemm rep " << rep;
    }
  }
}

TEST(ThreadedDriver, ForcedRegisterBlockShapesStayPoolInvariant) {
  // Dispatch overrides (the autotuner's stage-2 levers) compose with
  // threading: every supported MRxNR shape is bit-identical across
  // pool sizes.
  const Problem<float> p = make<float>(96, 80, 64, 906);
  for (const auto [mr, nr] :
       {std::pair{4, 4}, std::pair{6, 8}, std::pair{8, 8}}) {
    core::M3xuConfig cfg;
    cfg.mk_mr = mr;
    cfg.mk_nr = nr;
    SCOPED_TRACE(mr * 100 + nr);
    expect_pool_invariance("microkernel", cfg, AbftConfig{}, p);
  }
}

}  // namespace
}  // namespace m3xu::gemm
