// Tests for the M3XU hardware input split (Observation 1 of the paper:
// an FP32 significand divides exactly into two 12-bit parts) and the
// lossy software splits used by the 3-GEMM emulation baselines.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "fp/split.hpp"
#include "fp/unpacked.hpp"

namespace m3xu::fp {
namespace {

TEST(HwSplit, PartsSumToOriginalValue) {
  Rng rng(21);
  for (int i = 0; i < 1'000'000; ++i) {
    const float a = rng.any_finite_float();
    if (std::fpclassify(a) == FP_SUBNORMAL || a == 0.0f) continue;
    const HwSplit s = split_fp32_hw(a);
    // hi is a 12-bit value, lo a 12-bit value scaled 2^-12 below it;
    // their double sum is exact (24 <= 53 bits).
    EXPECT_EQ(hw_part_value(s.hi) + hw_part_value(s.lo),
              static_cast<double>(a))
        << a;
  }
}

TEST(HwSplit, HighPartHasHiddenOne) {
  Rng rng(22);
  for (int i = 0; i < 100'000; ++i) {
    const float a = rng.scaled_float();
    if (a == 0.0f) continue;
    const HwSplit s = split_fp32_hw(a);
    EXPECT_EQ(s.hi.sig >> 11, 1u) << a;       // hidden 1 at bit 11
    EXPECT_LT(s.lo.sig, 1u << 12);            // 12-bit field
    EXPECT_EQ(s.hi.exp_biased, s.lo.exp_biased);  // shared exponent wire
    EXPECT_EQ(s.hi.sign, s.lo.sign);              // shared sign wire
    EXPECT_FALSE(s.hi.low_part);
    EXPECT_TRUE(s.lo.low_part);
  }
}

TEST(HwSplit, SubnormalInputsFlushToZero) {
  const float sub = float_from_bits(0x0000ffff);
  ASSERT_EQ(std::fpclassify(sub), FP_SUBNORMAL);
  const HwSplit s = split_fp32_hw(sub);
  EXPECT_EQ(s.hi.sig, 0);
  EXPECT_EQ(s.lo.sig, 0);
  EXPECT_EQ(hw_part_value(s.hi), 0.0);
}

TEST(HwSplit, ZeroKeepsSign) {
  EXPECT_FALSE(split_fp32_hw(0.0f).hi.sign);
  EXPECT_TRUE(split_fp32_hw(-0.0f).hi.sign);
  EXPECT_EQ(split_fp32_hw(-0.0f).hi.sig, 0);
}

TEST(HwSplit, SpecialsAreFlagged) {
  const HwSplit inf = split_fp32_hw(std::numeric_limits<float>::infinity());
  EXPECT_FALSE(inf.hi.finite);
  EXPECT_FALSE(inf.hi.nan);
  const HwSplit nan = split_fp32_hw(std::numeric_limits<float>::quiet_NaN());
  EXPECT_FALSE(nan.hi.finite);
  EXPECT_TRUE(nan.hi.nan);
}

TEST(HwSplit, FourPartialProductsReconstructExactProduct) {
  // The algebra behind Observation 1/2: the four cross products of the
  // 12-bit parts, summed (each partial sum stays within 53 bits, so
  // double arithmetic is exact), equal the exact FP32 x FP32 product.
  Rng rng(23);
  for (int i = 0; i < 500'000; ++i) {
    const float a = rng.scaled_float();
    const float b = rng.scaled_float();
    if (a == 0.0f || b == 0.0f) continue;
    const HwSplit sa = split_fp32_hw(a);
    const HwSplit sb = split_fp32_hw(b);
    const double hh = hw_part_value(sa.hi) * hw_part_value(sb.hi);
    const double hl = hw_part_value(sa.hi) * hw_part_value(sb.lo);
    const double lh = hw_part_value(sa.lo) * hw_part_value(sb.hi);
    const double ll = hw_part_value(sa.lo) * hw_part_value(sb.lo);
    const double exact = static_cast<double>(a) * static_cast<double>(b);
    EXPECT_EQ(hh + hl + lh + ll, exact) << a << " * " << b;
  }
}

TEST(HwSplit, StepGroupingMatchesEquations6And8) {
  // Step 1 computes AH*BH + AL*BL (Eq. 6); step 2 swaps the B parts and
  // computes AH*BL + AL*BH (Eq. 8). Together they cover all four
  // partial products exactly once.
  Rng rng(24);
  for (int i = 0; i < 100'000; ++i) {
    const float a = rng.scaled_float();
    const float b = rng.scaled_float();
    const HwSplit sa = split_fp32_hw(a);
    const HwSplit sb = split_fp32_hw(b);
    const double step1 = hw_part_value(sa.hi) * hw_part_value(sb.hi) +
                         hw_part_value(sa.lo) * hw_part_value(sb.lo);
    const double step2 = hw_part_value(sa.hi) * hw_part_value(sb.lo) +
                         hw_part_value(sa.lo) * hw_part_value(sb.hi);
    EXPECT_EQ(step1 + step2, static_cast<double>(a) * static_cast<double>(b));
  }
}

TEST(SwSplit, TwoWayTf32SplitIsLossyOnFullMantissas) {
  // A full 24-bit mantissa cannot be captured by two 11-bit-significand
  // TF32 values (22 bits): the reconstruction must drop bits. This is
  // exactly the error source of cutlass_tensorop_sgemm (3xTF32).
  // 1 + 0xFFF * 2^-23: the residual after the TF32 high part has 12
  // significant bits, one more than TF32's 11-bit significand keeps.
  const float a = float_from_bits(0x3f800fff);
  const SwSplit2 s = split_float_sw(a, kTf32);
  const double recon =
      static_cast<double>(s.hi) + static_cast<double>(s.lo);
  EXPECT_NE(recon, static_cast<double>(a));
}

TEST(SwSplit, ResidualBoundedByFormatUlp) {
  Rng rng(25);
  int lossy = 0;
  for (int i = 0; i < 100'000; ++i) {
    const float a = rng.scaled_float();
    if (a == 0.0f) continue;
    const SwSplit2 s = split_float_sw(a, kTf32);
    const double recon = static_cast<double>(s.hi) + static_cast<double>(s.lo);
    // Two TF32 values capture >= 22 leading bits: relative residual
    // below 2^-21.
    EXPECT_LE(std::fabs(recon - a) / std::fabs(a), std::ldexp(1.0, -21));
    if (recon != static_cast<double>(a)) ++lossy;
  }
  // The loss is the common case for random 24-bit mantissas.
  EXPECT_GT(lossy, 0);
}

TEST(SwSplit, HiIsRoundOfInput) {
  Rng rng(26);
  for (int i = 0; i < 50'000; ++i) {
    const float a = rng.scaled_float();
    const SwSplit2 s = split_float_sw(a, kBf16);
    EXPECT_EQ(bits_of(s.hi), bits_of(round_to_format(a, kBf16)));
  }
}

}  // namespace
}  // namespace m3xu::fp
