// Tests for the synthesis-substitute cost model: Table III agreement
// and scaling-law sanity properties.
#include <gtest/gtest.h>

#include "hwmodel/cost_model.hpp"

namespace m3xu::hw {
namespace {

TEST(CostModel, BaselineIsUnity) {
  const TechnologyConstants tech;
  const CostResult r = evaluate(table3_designs()[0], tech);
  EXPECT_NEAR(r.area, 1.0, 1e-9);
  EXPECT_NEAR(r.cycle_time, 1.0, 1e-9);
  EXPECT_NEAR(r.power, 1.0, 1e-9);
}

TEST(CostModel, Table3AreasWithinTolerance) {
  const TechnologyConstants tech;
  const auto designs = table3_designs();
  const auto paper = table3_paper_rows();
  ASSERT_EQ(designs.size(), paper.size());
  for (std::size_t i = 0; i < designs.size(); ++i) {
    const CostResult r = evaluate(designs[i], tech);
    EXPECT_NEAR(r.area / paper[i].area, 1.0, 0.05) << designs[i].name;
  }
}

TEST(CostModel, Table3CycleTimesExact) {
  const TechnologyConstants tech;
  const auto designs = table3_designs();
  const auto paper = table3_paper_rows();
  for (std::size_t i = 0; i < designs.size(); ++i) {
    EXPECT_NEAR(evaluate(designs[i], tech).cycle_time, paper[i].cycle_time,
                1e-9)
        << designs[i].name;
  }
}

TEST(CostModel, Table3PowersWithinTolerance) {
  const TechnologyConstants tech;
  const auto designs = table3_designs();
  const auto paper = table3_paper_rows();
  for (std::size_t i = 0; i < designs.size(); ++i) {
    const CostResult r = evaluate(designs[i], tech);
    EXPECT_NEAR(r.power / paper[i].power, 1.0, 0.08) << designs[i].name;
  }
}

TEST(CostModel, AreaMonotoneInMultiplierWidth) {
  const TechnologyConstants tech;
  MxuDesign d{.name = "sweep"};
  double prev = 0.0;
  for (int w = 8; w <= 32; w += 2) {
    d.mult_bits = w;
    const double area = evaluate(d, tech).area;
    EXPECT_GT(area, prev);
    prev = area;
  }
}

TEST(CostModel, MultiplierAreaIsSuperlinear) {
  const TechnologyConstants tech;
  MxuDesign d{.name = "sweep"};
  d.mult_bits = 11;
  const double a11 = evaluate(d, tech).area;
  d.mult_bits = 22;
  const double a22 = evaluate(d, tech).area;
  // Doubling the width must grow the *multiplier* 4x: total area grows
  // by 3 * mult_share.
  EXPECT_NEAR(a22 - a11, 3.0 * tech.mult_area_weight, 1e-9);
}

TEST(CostModel, GatingSavesPower) {
  const TechnologyConstants tech;
  MxuDesign gated{.name = "g",
                  .mult_bits = 24,
                  .accum_bits = 48,
                  .input_gated = true};
  MxuDesign ungated = gated;
  ungated.name = "u";
  ungated.input_gated = false;
  EXPECT_LT(evaluate(gated, tech).power, evaluate(ungated, tech).power);
}

TEST(CostModel, PipeliningTradesAreaForFrequency) {
  const TechnologyConstants tech;
  const auto designs = table3_designs();
  const CostResult non_piped = evaluate(designs[3], tech);
  const CostResult piped = evaluate(designs[4], tech);
  EXPECT_GT(piped.area, non_piped.area);
  EXPECT_LT(piped.cycle_time, non_piped.cycle_time);
  EXPECT_GT(piped.power, non_piped.power);  // higher clock
}

TEST(CostModel, SmAreaRollUp) {
  // Paper: 47% MXU overhead -> ~4% SM area increase.
  EXPECT_NEAR(sm_area_increase(1.47), 0.04, 0.005);
  EXPECT_EQ(sm_area_increase(1.0), 0.0);
}

TEST(CostModel, ActiveEnergyByMode) {
  const TechnologyConstants tech;
  const auto designs = table3_designs();
  const MxuDesign& m3xu = designs[4];  // pipelined m3xu
  const double fp16_mode = active_energy_per_cycle(m3xu, tech, 11, 24);
  const double fp32_mode = active_energy_per_cycle(m3xu, tech, 12, 48);
  EXPECT_GT(fp32_mode, fp16_mode);  // the wide datapath toggles
  // The naive FP32-MXU burns its full array in every mode.
  const MxuDesign& fp32_mxu = designs[1];
  EXPECT_GT(active_energy_per_cycle(fp32_mxu, tech, 11, 24),
            fp32_mode * 2.0);
}

TEST(CostModel, ComposedDesignsScaleWithPartCount) {
  const TechnologyConstants tech;
  // More, narrower multipliers: smaller array, more assignment steps.
  const double a8 = evaluate(composed_design(8, 24, 48), tech).area;
  const double a12 = evaluate(composed_design(12, 24, 48), tech).area;
  const double a24 = evaluate(composed_design(24, 24, 48), tech).area;
  EXPECT_LT(a8, a12);
  EXPECT_LT(a12, a24);
  // Step counts follow ceil(sig/w)^2.
  EXPECT_EQ(composed_design(8, 24, 48).assign_steps, 9);
  EXPECT_EQ(composed_design(12, 24, 48).assign_steps, 4);
}

TEST(CostModel, Fp64DesignPrediction) {
  const TechnologyConstants tech;
  const CostResult r = evaluate(m3xu_fp64_design(), tech);
  // 27-bit multipliers quadratically dominate: well above the FP32
  // M3XU but still cheaper than a monolithic 53-bit FP64 array.
  const CostResult m3xu = evaluate(table3_designs()[4], tech);
  MxuDesign full_fp64{.name = "fp64_mxu",
                      .mult_bits = 53,
                      .accum_bits = 106,
                      .input_gated = false};
  const CostResult full = evaluate(full_fp64, tech);
  EXPECT_GT(r.area, m3xu.area);
  EXPECT_LT(r.area, full.area * 0.5);
}

}  // namespace
}  // namespace m3xu::hw
