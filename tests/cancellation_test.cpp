// Tests for cooperative cancellation and the thread-pool watchdog:
// token semantics, mid-parallel_for cancellation, deadline and stall
// detection (injected delays), exception priority, and the
// zero-false-positive guarantee on clean guarded runs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.hpp"
#include "common/thread_pool.hpp"
#include "telemetry/telemetry.hpp"

namespace m3xu {
namespace {

TEST(CancellationToken, LatchesOnceWithFirstReason) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.check());
  token.request_cancel("first");
  EXPECT_TRUE(token.cancelled());
  token.request_cancel("second");
  EXPECT_EQ(token.reason(), "first");
  try {
    token.check();
    FAIL() << "check() must throw once latched";
  } catch (const CancelledError& e) {
    EXPECT_NE(std::string(e.what()).find("first"), std::string::npos);
  }
}

TEST(CancellationToken, DeadlineExceededIsACancelledError) {
  // Callers that catch CancelledError must also catch watchdog aborts.
  try {
    throw DeadlineExceeded("late");
  } catch (const CancelledError&) {
    SUCCEED();
  }
}

TEST(ParallelOptions, GuardedOnlyWhenConfigured) {
  EXPECT_FALSE(ParallelOptions{}.guarded());
  CancellationToken token;
  ParallelOptions with_token;
  with_token.token = &token;
  EXPECT_TRUE(with_token.guarded());
  ParallelOptions with_deadline;
  with_deadline.deadline_ms = 1;
  EXPECT_TRUE(with_deadline.guarded());
  ParallelOptions with_stall;
  with_stall.stall_ms = 1;
  EXPECT_TRUE(with_stall.guarded());
}

TEST(Cancellation, PreCancelledTokenAbortsPooledRun) {
  ThreadPool pool(4);
  CancellationToken token;
  token.request_cancel("pre");
  ParallelOptions options;
  options.token = &token;
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(100, 1, [&](std::size_t) { ++ran; }, options),
      CancelledError);
  EXPECT_EQ(ran.load(), 0);
}

TEST(Cancellation, PreCancelledTokenAbortsSerialRun) {
  ThreadPool pool(1);
  CancellationToken token;
  token.request_cancel("pre");
  ParallelOptions options;
  options.token = &token;
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(100, 1, [&](std::size_t) { ++ran; }, options),
      CancelledError);
  EXPECT_EQ(ran.load(), 0);
}

TEST(Cancellation, TokenObservedMidParallelFor) {
  ThreadPool pool(4);
  CancellationToken token;
  ParallelOptions options;
  options.token = &token;
  std::atomic<std::size_t> ran{0};
  const std::size_t n = 10'000;
  try {
    pool.parallel_for(
        n, 1,
        [&](std::size_t i) {
          if (i == 0) token.request_cancel("mid-run");
          ++ran;
        },
        options);
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_NE(std::string(e.what()).find("mid-run"), std::string::npos);
  }
  // Every iteration polls the token, so the skip must leave most of
  // the range unexecuted.
  EXPECT_LT(ran.load(), n);
  // The pool stays usable after the abort.
  std::atomic<std::size_t> count{0};
  pool.parallel_for(64, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 64u);
}

TEST(Cancellation, FnExceptionOutranksCancellation) {
  ThreadPool pool(4);
  CancellationToken token;
  ParallelOptions options;
  options.token = &token;
  EXPECT_THROW(pool.parallel_for(
                   1000, 1,
                   [&](std::size_t i) {
                     if (i == 0) {
                       token.request_cancel("masked");
                       throw std::runtime_error("real failure");
                     }
                   },
                   options),
               std::runtime_error);
}

TEST(Watchdog, DeadlineFiresOnInjectedStallPooled) {
  ThreadPool pool(4);
  ParallelOptions options;
  options.deadline_ms = 25;
  std::atomic<std::size_t> ran{0};
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(pool.parallel_for(
                   64, 1,
                   [&](std::size_t) {
                     ++ran;
                     std::this_thread::sleep_for(
                         std::chrono::milliseconds(10));
                   },
                   options),
               DeadlineExceeded);
  // The abort happened long before all 64 x 10ms of work was done.
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::milliseconds(2000));
  EXPECT_LT(ran.load(), 64u);
}

TEST(Watchdog, DeadlineFiresOnSerialPool) {
  ThreadPool pool(1);
  ParallelOptions options;
  options.deadline_ms = 25;
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(pool.parallel_for(
                   64, 1,
                   [&](std::size_t) {
                     ++ran;
                     std::this_thread::sleep_for(
                         std::chrono::milliseconds(10));
                   },
                   options),
               DeadlineExceeded);
  EXPECT_LT(ran.load(), 64u);
}

TEST(Watchdog, StallDetectionFiresOnStuckWorker) {
  ThreadPool pool(2);
  ParallelOptions options;
  options.stall_ms = 40;
  std::atomic<bool> woke{false};
  try {
    pool.parallel_for(
        4, 1,
        [&](std::size_t i) {
          if (i == 0) {
            // One worker sleeps well past the stall window while the
            // rest of the range finishes immediately.
            std::this_thread::sleep_for(std::chrono::milliseconds(300));
            woke = true;
          }
        },
        options);
    FAIL() << "expected DeadlineExceeded from the stall watchdog";
  } catch (const DeadlineExceeded& e) {
    EXPECT_NE(std::string(e.what()).find("stalled"), std::string::npos);
  }
  // The abort is cooperative: parallel_for returned only after the
  // stuck worker finished its iteration.
  EXPECT_TRUE(woke.load());
}

TEST(Watchdog, NoFalsePositivesOnCleanGuardedRuns) {
  ThreadPool pool(4);
  CancellationToken token;  // never cancelled
  ParallelOptions options;
  options.token = &token;
  options.deadline_ms = 60'000;
  options.stall_ms = 60'000;
  const telemetry::Snapshot before = telemetry::snapshot();
  for (int rep = 0; rep < 20; ++rep) {
    std::atomic<std::size_t> ran{0};
    pool.parallel_for(256, 1, [&](std::size_t) { ++ran; }, options);
    ASSERT_EQ(ran.load(), 256u);
  }
  const telemetry::Snapshot after = telemetry::snapshot();
  EXPECT_EQ(after.counter_delta(before, "threadpool.cancellations"), 0u);
  EXPECT_EQ(
      after.counter_delta(before, "threadpool.watchdog.deadline_fired"), 0u);
  EXPECT_EQ(
      after.counter_delta(before, "threadpool.watchdog.stalls_detected"), 0u);
}

TEST(CancellationReason, TagRidesTheTokenIntoCancelledError) {
  CancellationToken token;
  EXPECT_EQ(token.reason_tag(), CancelReason::kUnspecified);
  token.request_cancel("shed by admission control", CancelReason::kShed);
  EXPECT_EQ(token.reason_tag(), CancelReason::kShed);
  // The latch keeps the first tag too.
  token.request_cancel("later", CancelReason::kUser);
  EXPECT_EQ(token.reason_tag(), CancelReason::kShed);
  try {
    token.check();
    FAIL() << "latched token must throw";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelReason::kShed);
  }
}

TEST(CancellationReason, NamesAreStable) {
  EXPECT_STREQ(cancel_reason_name(CancelReason::kUnspecified), "unspecified");
  EXPECT_STREQ(cancel_reason_name(CancelReason::kUser), "user");
  EXPECT_STREQ(cancel_reason_name(CancelReason::kDeadline), "deadline");
  EXPECT_STREQ(cancel_reason_name(CancelReason::kShed), "shed");
  EXPECT_STREQ(cancel_reason_name(CancelReason::kStall), "stall");
}

#if M3XU_TELEMETRY_ENABLED
TEST(CancellationReason, ReasonCountersTrackTokenLatches) {
  const telemetry::Snapshot before = telemetry::snapshot();
  CancellationToken user_token;
  user_token.request_cancel("user asked", CancelReason::kUser);
  CancellationToken deadline_token;
  deadline_token.request_cancel("too slow", CancelReason::kDeadline);
  const telemetry::Snapshot after = telemetry::snapshot();
  EXPECT_GE(after.counter_delta(before, "cancel.user"), 1u);
  EXPECT_GE(after.counter_delta(before, "cancel.deadline"), 1u);
}
#endif

TEST(CancelTimer, CancelAfterLatchesTokenWithDeadlineReason) {
  CancellationToken token;
  {
    CancelTimer timer = token.cancel_after(10);
    const auto t0 = std::chrono::steady_clock::now();
    while (!token.cancelled() &&
           std::chrono::steady_clock::now() - t0 <
               std::chrono::seconds(5)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason_tag(), CancelReason::kDeadline);
  EXPECT_THROW(token.check(), CancelledError);
}

TEST(CancelTimer, DestructionDisarmsBeforeFiring) {
  CancellationToken token;
  {
    CancelTimer timer = token.cancel_after(60'000);
  }  // destroyed long before the 60s delay
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelTimer, CustomReasonTagPropagates) {
  CancellationToken token;
  {
    CancelTimer timer =
        token.cancel_after(1, CancelReason::kShed, "shed by test");
    const auto t0 = std::chrono::steady_clock::now();
    while (!token.cancelled() &&
           std::chrono::steady_clock::now() - t0 <
               std::chrono::seconds(5)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason_tag(), CancelReason::kShed);
  EXPECT_NE(token.reason().find("shed by test"), std::string::npos);
}

TEST(CancelTimer, AbortsARunningParallelFor) {
  ThreadPool pool(4);
  CancellationToken token;
  CancelTimer timer = token.cancel_after(20);
  ParallelOptions options;
  options.token = &token;
  std::atomic<std::size_t> ran{0};
  try {
    pool.parallel_for(
        10'000, 1,
        [&](std::size_t) {
          ++ran;
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        },
        options);
    FAIL() << "expected CancelledError from the deadline timer";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelReason::kDeadline);
  }
  EXPECT_LT(ran.load(), 10'000u);
}

TEST(Watchdog, GuardedRunStillCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  CancellationToken token;
  ParallelOptions options;
  options.token = &token;
  std::vector<std::atomic<int>> hits(500);
  pool.parallel_for(hits.size(), 1, [&](std::size_t i) { ++hits[i]; },
                    options);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

}  // namespace
}  // namespace m3xu
