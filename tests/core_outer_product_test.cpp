// Tests for the outer-product-dataflow M3XU and API-misuse death
// checks across the core module (the "can apply to any MXU
// architecture" claim, SII-A, plus failure injection).
#include <gtest/gtest.h>

#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "core/multi_part.hpp"
#include "core/mxu.hpp"
#include "core/outer_product.hpp"
#include "core/systolic.hpp"
#include "fp/unpacked.hpp"

namespace m3xu::core {
namespace {

struct Tile {
  int m = 16, n = 8, k = 8;
  std::vector<float> a, b, c, d;

  explicit Tile(std::uint64_t seed) {
    Rng rng(seed);
    a.resize(static_cast<std::size_t>(m) * k);
    b.resize(static_cast<std::size_t>(k) * n);
    c.resize(static_cast<std::size_t>(m) * n);
    d.resize(static_cast<std::size_t>(m) * n);
    for (auto& v : a) v = rng.scaled_float();
    for (auto& v : b) v = rng.scaled_float();
    for (auto& v : c) v = rng.scaled_float();
  }
};

TEST(OuterProduct, PerInstructionBitIdenticalToDotProductDataflow) {
  // Exact accumulation is commutative: the dataflow cannot matter.
  M3xuConfig cfg;
  cfg.per_step_rounding = false;
  const OuterProductEngine outer(cfg);
  const M3xuEngine dp(cfg);
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Tile t(1000 + seed);
    outer.mma_fp32(t.m, t.n, t.k, t.a.data(), t.k, t.b.data(), t.n,
                   t.c.data(), t.n, t.d.data(), t.n);
    std::vector<float> ref = t.c;
    dp.gemm_fp32(t.m, t.n, t.k, t.a.data(), t.k, t.b.data(), t.n, ref.data(),
                 t.n);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(bits_of(t.d[i]), bits_of(ref[i])) << seed << " @" << i;
    }
  }
}

TEST(OuterProduct, PerElementRoundingStaysWithinRegisterQuantum) {
  // The natural outer-product register behavior rounds k times at 48
  // bits: vs the single-rounded result the drift is far below FP32
  // resolution.
  const OuterProductEngine outer;  // per-step default
  M3xuConfig exact_cfg;
  exact_cfg.per_step_rounding = false;
  const M3xuEngine dp(exact_cfg);
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Tile t(2000 + seed);
    outer.mma_fp32(t.m, t.n, t.k, t.a.data(), t.k, t.b.data(), t.n,
                   t.c.data(), t.n, t.d.data(), t.n);
    std::vector<float> ref = t.c;
    dp.gemm_fp32(t.m, t.n, t.k, t.a.data(), t.k, t.b.data(), t.n, ref.data(),
                 t.n);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      const float next_up = std::nextafterf(ref[i], 1e30f);
      const float next_dn = std::nextafterf(ref[i], -1e30f);
      EXPECT_TRUE(t.d[i] == ref[i] || t.d[i] == next_up || t.d[i] == next_dn)
          << seed << " @" << i;
    }
  }
}

TEST(OuterProduct, IntegerTilesAreExact) {
  const OuterProductEngine outer;
  Rng rng(3000);
  Tile t(0);
  for (auto& v : t.a) v = static_cast<float>(rng.next_below(17)) - 8.0f;
  for (auto& v : t.b) v = static_cast<float>(rng.next_below(17)) - 8.0f;
  for (auto& v : t.c) v = 0.0f;
  outer.mma_fp32(t.m, t.n, t.k, t.a.data(), t.k, t.b.data(), t.n,
                 t.c.data(), t.n, t.d.data(), t.n);
  for (int i = 0; i < t.m; ++i) {
    for (int j = 0; j < t.n; ++j) {
      long s = 0;
      for (int kk = 0; kk < t.k; ++kk) {
        s += static_cast<long>(t.a[i * t.k + kk]) *
             static_cast<long>(t.b[kk * t.n + j]);
      }
      EXPECT_EQ(t.d[i * t.n + j], static_cast<float>(s));
    }
  }
}

TEST(Systolic, PerInstructionBitIdenticalToOtherDataflows) {
  // All three SII-A dataflows share the exact-accumulation semantics:
  // under per-instruction rounding they are indistinguishable.
  M3xuConfig cfg;
  cfg.per_step_rounding = false;
  const SystolicEngine systolic(cfg);
  const OuterProductEngine outer(cfg);
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Tile t(4000 + seed);
    std::vector<float> d_sys(t.d.size()), d_out(t.d.size());
    systolic.mma_fp32(t.m, t.n, t.k, t.a.data(), t.k, t.b.data(), t.n,
                      t.c.data(), t.n, d_sys.data(), t.n);
    outer.mma_fp32(t.m, t.n, t.k, t.a.data(), t.k, t.b.data(), t.n,
                   t.c.data(), t.n, d_out.data(), t.n);
    for (std::size_t i = 0; i < d_sys.size(); ++i) {
      ASSERT_EQ(bits_of(d_sys[i]), bits_of(d_out[i])) << seed << "@" << i;
    }
  }
}

TEST(Systolic, PerHopRoundingStaysWithinUlp) {
  const SystolicEngine systolic;  // per-hop 48-bit partial sums
  M3xuConfig exact_cfg;
  exact_cfg.per_step_rounding = false;
  const SystolicEngine exact(exact_cfg);
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Tile t(5000 + seed);
    std::vector<float> hops(t.d.size()), once(t.d.size());
    systolic.mma_fp32(t.m, t.n, t.k, t.a.data(), t.k, t.b.data(), t.n,
                      t.c.data(), t.n, hops.data(), t.n);
    exact.mma_fp32(t.m, t.n, t.k, t.a.data(), t.k, t.b.data(), t.n,
                   t.c.data(), t.n, once.data(), t.n);
    for (std::size_t i = 0; i < hops.size(); ++i) {
      const float up = std::nextafterf(once[i], 1e30f);
      const float dn = std::nextafterf(once[i], -1e30f);
      EXPECT_TRUE(hops[i] == once[i] || hops[i] == up || hops[i] == dn)
          << seed << "@" << i;
    }
  }
}

// --- Failure injection: API misuse must trip checks, not corrupt ------

using CoreDeathTest = ::testing::Test;

TEST(CoreDeathTest, OversizedInstructionKRejected) {
  const M3xuEngine engine;
  std::vector<float> a(9, 1.0f), b(9, 1.0f);
  EXPECT_DEATH(
      (void)engine.mma_dot_fp32({a.data(), 9}, {b.data(), 9}, 0.0f), "");
}

TEST(CoreDeathTest, MismatchedSpansRejected) {
  const M3xuEngine engine;
  std::vector<float> a(4, 1.0f), b(3, 1.0f);
  EXPECT_DEATH(
      (void)engine.mma_dot_fp32({a.data(), 4}, {b.data(), 3}, 0.0f), "");
}

TEST(CoreDeathTest, InvalidAccumPrecisionRejected) {
  M3xuConfig cfg;
  cfg.accum_prec = 8;  // below the FP32 output width
  EXPECT_DEATH(M3xuEngine{cfg}, "");
  cfg.accum_prec = 80;  // beyond the register model
  EXPECT_DEATH(M3xuEngine{cfg}, "");
}

TEST(CoreDeathTest, InvalidMultiPartWidthRejected) {
  MultiPartConfig cfg;
  cfg.part_bits = 1;
  EXPECT_DEATH(MultiPartEngine{cfg}, "");
  cfg.part_bits = 40;
  EXPECT_DEATH(MultiPartEngine{cfg}, "");
}

TEST(CoreDeathTest, OuterProductOversizedK) {
  const OuterProductEngine outer;
  std::vector<float> a(16 * 9, 1.0f), b(9 * 8, 1.0f), c(16 * 8, 0.0f),
      d(16 * 8);
  EXPECT_DEATH(outer.mma_fp32(16, 8, 9, a.data(), 9, b.data(), 8, c.data(),
                              8, d.data(), 8),
               "");
}

}  // namespace
}  // namespace m3xu::core
