// Second-tier property tests for the M3XU engine: K-length sweeps,
// cross-mode consistency, accumulator-width monotonicity, schedule
// structure invariants, and leading-dimension (submatrix) handling.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <complex>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "core/data_assignment.hpp"
#include "core/mxu.hpp"
#include "fp/exact_accumulator.hpp"

namespace m3xu::core {
namespace {

// --- Schedule structure invariants -------------------------------------

TEST(ScheduleStructure, Fp32LaneCounts) {
  Rng rng(301);
  std::vector<float> a(8), b(8);
  for (auto& v : a) v = rng.scaled_float();
  for (auto& v : b) v = rng.scaled_float();
  const auto steps = DataAssignmentStage::schedule_fp32(a, b);
  // Two lanes per element per step; a and b streams stay paired.
  EXPECT_EQ(steps[0].a.size(), 16u);
  EXPECT_EQ(steps[1].a.size(), 16u);
  EXPECT_EQ(steps[0].a.size(), steps[0].b.size());
}

TEST(ScheduleStructure, Fp32StepOneIsBSwappedStepZero) {
  // Eq. 8: step 1 uses the same A operands with the B high/low roles
  // exchanged - per element, step0 pairs (H,H),(L,L) and step1 pairs
  // (H,L),(L,H).
  Rng rng(302);
  std::vector<float> a(4), b(4);
  for (auto& v : a) v = rng.scaled_float();
  for (auto& v : b) v = rng.scaled_float();
  const auto steps = DataAssignmentStage::schedule_fp32(a, b);
  for (std::size_t e = 0; e < 4; ++e) {
    // A-side operands identical across steps.
    EXPECT_EQ(steps[0].a[2 * e].sig, steps[1].a[2 * e].sig);
    EXPECT_EQ(steps[0].a[2 * e + 1].sig, steps[1].a[2 * e + 1].sig);
    // B-side swapped.
    EXPECT_EQ(steps[0].b[2 * e].sig, steps[1].b[2 * e + 1].sig);
    EXPECT_EQ(steps[0].b[2 * e + 1].sig, steps[1].b[2 * e].sig);
  }
}

TEST(ScheduleStructure, Fp32cSignFlipsOnlyImaginaryImaginary) {
  using C = std::complex<float>;
  const C a[] = {C(1.5f, 2.5f)};
  const C b[] = {C(3.5f, 4.5f)};
  const auto sched = DataAssignmentStage::schedule_fp32c(a, b);
  // Real part, step 0: lanes 0-1 are aR*bR (positive), lanes 2-3 are
  // aI*bI with the A-side sign flipped.
  ASSERT_EQ(sched.real[0].a.size(), 4u);
  EXPECT_FALSE(sched.real[0].a[0].sign);
  EXPECT_FALSE(sched.real[0].a[1].sign);
  EXPECT_TRUE(sched.real[0].a[2].sign);  // flipped imag*imag high lane
  EXPECT_TRUE(sched.real[0].a[3].sign);
  // Imaginary part: no flips (all inputs positive here).
  for (const LaneOperand& op : sched.imag[0].a) EXPECT_FALSE(op.sign);
}

TEST(ScheduleStructure, PassthroughLaneValuesRoundTrip) {
  Rng rng(303);
  std::vector<float> a(16), b(16);
  for (auto& v : a) v = rng.scaled_float();
  for (auto& v : b) v = rng.scaled_float();
  const StepOperands step =
      DataAssignmentStage::schedule_passthrough(a, b, fp::kFp16);
  for (std::size_t i = 0; i < 16; ++i) {
    if (step.a[i].cls != LaneOperand::Cls::kFinite) continue;
    const double lane =
        (step.a[i].sign ? -1.0 : 1.0) *
        std::ldexp(static_cast<double>(step.a[i].sig), step.a[i].exp2);
    EXPECT_EQ(lane, static_cast<double>(fp::round_to_format(a[i], fp::kFp16)));
  }
}

TEST(ScheduleStructure, Fp8PassthroughFeedsTheSameMultipliers) {
  // FP8 inputs ride the existing passthrough path (4-bit significands
  // fit the 12-bit multipliers with room to spare).
  const M3xuEngine engine;
  const float av[] = {1.125f};
  const float bv[] = {2.0f};
  EXPECT_EQ(engine.mma_dot_passthrough(av, bv, 0.0f, fp::kFp8E4M3), 2.25f);
  // Values below FP8 precision collapse on ingest.
  const float cv[] = {1.0625f};
  EXPECT_EQ(engine.mma_dot_passthrough(cv, bv, 0.0f, fp::kFp8E4M3), 2.0f);
}

// --- K-length sweeps ----------------------------------------------------

class KSweep : public ::testing::TestWithParam<int> {};

TEST_P(KSweep, DotMatchesOracleAtEveryLength) {
  const int k = GetParam();
  M3xuConfig cfg;
  cfg.per_step_rounding = false;
  const M3xuEngine engine(cfg);
  Rng rng(304 + k);
  for (int trial = 0; trial < 20'000; ++trial) {
    std::vector<float> a(k), b(k);
    for (auto& v : a) v = rng.scaled_float();
    for (auto& v : b) v = rng.scaled_float();
    fp::ExactAccumulator oracle;
    for (int i = 0; i < k; ++i) {
      oracle.add_product(fp::unpack(a[i]), fp::unpack(b[i]));
    }
    const float got =
        engine.mma_dot_fp32({a.data(), a.size()}, {b.data(), b.size()}, 0.0f);
    EXPECT_EQ(bits_of(got), bits_of(oracle.to_float()));
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, KSweep, ::testing::Values(1, 2, 3, 5, 8),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

// --- Cross-mode consistency ----------------------------------------------

TEST(CrossMode, ComplexWithZeroImaginaryEqualsRealMode) {
  const M3xuEngine engine;
  Rng rng(305);
  using C = std::complex<float>;
  for (int trial = 0; trial < 50'000; ++trial) {
    std::array<float, 4> ar{}, br{};
    std::array<C, 4> ac{}, bc{};
    for (int i = 0; i < 4; ++i) {
      ar[i] = rng.scaled_float();
      br[i] = rng.scaled_float();
      ac[i] = C(ar[i], 0.0f);
      bc[i] = C(br[i], 0.0f);
    }
    const float cr = rng.scaled_float();
    const C got = engine.mma_dot_fp32c(ac, bc, C(cr, 0.0f));
    const float real_mode = engine.mma_dot_fp32(
        {ar.data(), ar.size()}, {br.data(), br.size()}, cr);
    EXPECT_EQ(bits_of(got.real()), bits_of(real_mode));
    EXPECT_EQ(got.imag(), 0.0f);
  }
}

TEST(CrossMode, Fp64ModeOnFp32ValuesMatchesFp32Mode) {
  // FP32 values widen exactly to FP64; per-instruction rounding of the
  // same K=1 product must agree after narrowing.
  M3xuConfig cfg;
  cfg.per_step_rounding = false;
  const M3xuEngine engine(cfg);
  Rng rng(306);
  for (int trial = 0; trial < 100'000; ++trial) {
    const float a = rng.scaled_float();
    const float b = rng.scaled_float();
    const float av[] = {a};
    const float bv[] = {b};
    const double ad[] = {a};
    const double bd[] = {b};
    const float via32 = engine.mma_dot_fp32(av, bv, 0.0f);
    const double via64 = engine.mma_dot_fp64(ad, bd, 0.0);
    EXPECT_EQ(bits_of(via32), bits_of(static_cast<float>(via64)));
  }
}

TEST(CrossMode, ConjugateSymmetryOfComplexDot) {
  // conj(a) . conj(b) == conj(a . b) for the engine's complex mode
  // (sign flips commute with the exact product datapath).
  const M3xuEngine engine;
  Rng rng(307);
  using C = std::complex<float>;
  for (int trial = 0; trial < 50'000; ++trial) {
    std::array<C, 4> a{}, b{}, ac{}, bc{};
    for (int i = 0; i < 4; ++i) {
      a[i] = C(rng.scaled_float(), rng.scaled_float());
      b[i] = C(rng.scaled_float(), rng.scaled_float());
      ac[i] = std::conj(a[i]);
      bc[i] = std::conj(b[i]);
    }
    const C plain = engine.mma_dot_fp32c(a, b, C{});
    const C conj = engine.mma_dot_fp32c(ac, bc, C{});
    EXPECT_EQ(bits_of(plain.real()), bits_of(conj.real()));
    EXPECT_EQ(bits_of(plain.imag()), bits_of(-conj.imag()));
  }
}

// --- Accumulator-width monotonicity --------------------------------------

TEST(AccumWidth, LongReductionErrorShrinksWithRegisterWidth) {
  Rng rng(308);
  const int k = 8;
  const int chunks = 512;
  double prev_err = HUGE_VAL;
  for (int prec : {24, 32, 48}) {
    M3xuConfig cfg;
    cfg.accum_prec = prec;
    const M3xuEngine engine(cfg);
    Rng local(309);
    double err_total = 0.0;
    for (int rep = 0; rep < 50; ++rep) {
      float acc = 0.0f;
      fp::ExactAccumulator oracle;
      for (int c = 0; c < chunks; ++c) {
        std::array<float, k> a{}, b{};
        for (int i = 0; i < k; ++i) {
          a[i] = std::fabs(local.scaled_float());
          b[i] = std::fabs(local.scaled_float());
          oracle.add_product(fp::unpack(a[i]), fp::unpack(b[i]));
        }
        acc = engine.mma_dot_fp32(a, b, acc);
      }
      err_total += std::fabs(acc - oracle.to_double());
    }
    // Chunk-boundary FP32 roundings dominate, so widths beyond 24 bits
    // can only tie or improve.
    EXPECT_LE(err_total, prev_err * 1.0001) << prec;
    prev_err = err_total;
  }
}

// --- Leading-dimension (submatrix) handling ------------------------------

TEST(LeadingDimension, GemmOnSubmatrixMatchesDenseCopy) {
  const M3xuEngine engine;
  Rng rng(310);
  const int m = 6, n = 5, k = 12;
  const int lda = k + 3, ldb = n + 2, ldc = n + 4;
  std::vector<float> a(m * lda), b(k * ldb), c(m * ldc, 0.0f);
  for (auto& v : a) v = rng.scaled_float();
  for (auto& v : b) v = rng.scaled_float();
  engine.gemm_fp32(m, n, k, a.data(), lda, b.data(), ldb, c.data(), ldc);
  // Dense copies.
  std::vector<float> ad(m * k), bd(k * n), cd(m * n, 0.0f);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < k; ++j) ad[i * k + j] = a[i * lda + j];
  }
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < n; ++j) bd[i * n + j] = b[i * ldb + j];
  }
  engine.gemm_fp32(m, n, k, ad.data(), k, bd.data(), n, cd.data(), n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      EXPECT_EQ(bits_of(c[i * ldc + j]), bits_of(cd[i * n + j]));
    }
  }
}

TEST(LeadingDimension, PaddingIsNeverTouched) {
  const M3xuEngine engine;
  const int m = 3, n = 3, k = 4, ldc = 6;
  std::vector<float> a(m * k, 1.0f), b(k * n, 1.0f);
  std::vector<float> c(m * ldc, -7.0f);
  engine.gemm_fp32(m, n, k, a.data(), k, b.data(), n, c.data(), ldc);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) EXPECT_EQ(c[i * ldc + j], -7.0f + 4.0f);
    for (int j = n; j < ldc; ++j) EXPECT_EQ(c[i * ldc + j], -7.0f);
  }
}

}  // namespace
}  // namespace m3xu::core
