// Tests for the resilient execution layer around the tiled GEMM
// driver: the retry-then-demote ladder, tile quarantine, terminal
// behaviors, allocation-failure fallback, staged-panel faults, the
// NaN-aware checksum, and legacy-protocol equivalence.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <complex>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "gemm/matrix.hpp"
#include "gemm/panel_cache.hpp"
#include "gemm/reference.hpp"
#include "gemm/tiled_driver.hpp"
#include "telemetry/telemetry.hpp"

namespace m3xu::gemm {
namespace {

std::uint32_t bits32(float v) { return std::bit_cast<std::uint32_t>(v); }

bool bitwise_equal(const Matrix<float>& x, const Matrix<float>& y) {
  for (int i = 0; i < x.rows(); ++i) {
    for (int j = 0; j < x.cols(); ++j) {
      if (bits32(x(i, j)) != bits32(y(i, j))) return false;
    }
  }
  return true;
}

struct Problem {
  Matrix<float> a, b, c;
};

Problem make(int m, int n, int k, std::uint64_t seed) {
  Problem p{Matrix<float>(m, k), Matrix<float>(k, n), Matrix<float>(m, n)};
  Rng rng(seed);
  fill_random(p.a, rng);
  fill_random(p.b, rng);
  fill_random(p.c, rng);
  return p;
}

TileConfig single_tile_cfg() { return TileConfig{32, 32, 32, 16, 16}; }

AbftConfig abft_on() {
  AbftConfig abft;
  abft.enable = true;
  return abft;
}

long total_recovered(const RecoveryReport& rec) {
  long total = 0;
  for (int r = 0; r < kRouteCount; ++r) total += rec.recovered_on[r];
  return total;
}

TEST(TileQuarantine, OnlyLowersAndReportsChanges) {
  TileQuarantine q;
  Route route = Route::kMicrokernel;
  EXPECT_FALSE(q.lookup(7, &route));
  EXPECT_TRUE(q.demote(7, Route::kGenericPerDot));
  EXPECT_TRUE(q.lookup(7, &route));
  EXPECT_EQ(route, Route::kGenericPerDot);
  // Raising back up is a no-op.
  EXPECT_FALSE(q.demote(7, Route::kPackedFused));
  EXPECT_TRUE(q.lookup(7, &route));
  EXPECT_EQ(route, Route::kGenericPerDot);
  // Lowering further sticks.
  EXPECT_TRUE(q.demote(7, Route::kScalarReference));
  EXPECT_TRUE(q.lookup(7, &route));
  EXPECT_EQ(route, Route::kScalarReference);
  EXPECT_EQ(q.size(), 1u);
  q.clear();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.lookup(7, &route));
}

TEST(TileQuarantine, CapacityBoundsEntriesWithLruEviction) {
  TileQuarantine q(2);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_TRUE(q.demote(1, Route::kPackedFused));
  EXPECT_TRUE(q.demote(2, Route::kPackedFused));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.evictions(), 0u);
  // Refresh tile 1 so tile 2 is the LRU victim of the next insert.
  Route route = Route::kMicrokernel;
  EXPECT_TRUE(q.lookup(1, &route));
  EXPECT_TRUE(q.demote(3, Route::kGenericPerDot));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.evictions(), 1u);
  EXPECT_TRUE(q.lookup(1, &route));
  EXPECT_FALSE(q.lookup(2, &route));  // evicted
  EXPECT_TRUE(q.lookup(3, &route));
}

#if M3XU_TELEMETRY_ENABLED
TEST(TileQuarantine, EvictionCounterIsExported) {
  const telemetry::Snapshot before = telemetry::snapshot();
  TileQuarantine q(1);
  q.demote(1, Route::kPackedFused);
  q.demote(2, Route::kPackedFused);  // evicts tile 1
  const telemetry::Snapshot after = telemetry::snapshot();
  EXPECT_GE(after.counter_delta(before, "recovery.quarantine_evictions"), 1u);
}
#endif

TEST(ResilienceValidation, RejectsMalformedPolicyAndExecConfigs) {
  const ScopedCheckHandler guard(throwing_check_failure_handler);
  const Problem p = make(32, 32, 32, 90);
  const core::M3xuEngine clean{core::M3xuConfig{}};
  Matrix<float> out = p.c;

  RecoveryPolicy bad_retries;
  bad_retries.retries_per_route = -1;
  EXPECT_THROW(tiled_sgemm(clean, single_tile_cfg(), abft_on(), bad_retries,
                           ExecConfig{}, p.a, p.b, out),
               CheckError);

  RecoveryPolicy bad_floor;
  bad_floor.floor = static_cast<Route>(kRouteCount);
  EXPECT_THROW(tiled_sgemm(clean, single_tile_cfg(), abft_on(), bad_floor,
                           ExecConfig{}, p.a, p.b, out),
               CheckError);

  ExecConfig negative_deadline;
  negative_deadline.deadline_ms = -5;
  EXPECT_THROW(tiled_sgemm(clean, single_tile_cfg(), abft_on(),
                           RecoveryPolicy{}, negative_deadline, p.a, p.b,
                           out),
               CheckError);

  // Stall detection without a wall-deadline backstop is rejected: a
  // trickle of progress would never terminate.
  ExecConfig stall_only;
  stall_only.stall_ms = 10;
  EXPECT_THROW(tiled_sgemm(clean, single_tile_cfg(), abft_on(),
                           RecoveryPolicy{}, stall_only, p.a, p.b, out),
               CheckError);

  // A panel cache requires a nonzero B-identity key.
  struct NullCache final : PanelCache {
    bool get_fp32(const PanelKey&, core::PackedPanelFp32B*) override {
      return false;
    }
    bool get_fp32c(const PanelKey&, core::PackedPanelFp32cB*) override {
      return false;
    }
    void put_fp32(const PanelKey&, const core::PackedPanelFp32B&) override {}
    void put_fp32c(const PanelKey&,
                   const core::PackedPanelFp32cB&) override {}
  };
  NullCache cache;
  ExecConfig keyless_cache;
  keyless_cache.b_cache = &cache;
  EXPECT_THROW(tiled_sgemm(clean, single_tile_cfg(), abft_on(),
                           RecoveryPolicy{}, keyless_cache, p.a, p.b, out),
               CheckError);

  // The valid combinations still run.
  ExecConfig ok;
  ok.deadline_ms = 60'000;
  ok.stall_ms = 60'000;
  EXPECT_NO_THROW(tiled_sgemm(clean, single_tile_cfg(), abft_on(),
                              RecoveryPolicy{}, ok, p.a, p.b, out));
}

TEST(Resilience, LadderWalksToScalarAndRecoversBitExact) {
  // Rate-1.0 accumulator faults corrupt every pass through the primary
  // datapath (and every per-tile retry injector), so the ladder must
  // walk all the way down; the scalar rung runs fault-free and its
  // recovery is bit-exact by construction.
  const Problem p = make(32, 32, 64, 77);
  const core::M3xuEngine clean{core::M3xuConfig{}};
  Matrix<float> ref = p.c;
  tiled_sgemm(clean, single_tile_cfg(), p.a, p.b, ref);

  const fault::FaultInjector inj(
      1234, fault::SiteRates::only(fault::Site::kAccumulator, 1.0));
  core::M3xuConfig cfg;
  cfg.injector = &inj;
  const core::M3xuEngine eng(cfg);
  const RecoveryPolicy policy;  // defaults: full ladder, throw terminal
  Matrix<float> out = p.c;
  const TiledGemmStats stats = tiled_sgemm(eng, single_tile_cfg(), abft_on(),
                                           policy, ExecConfig{}, p.a, p.b,
                                           out);
  EXPECT_EQ(stats.abft_detected, 1);
  EXPECT_EQ(stats.recovery.demotions, 3);
  EXPECT_EQ(stats.recovery.demoted_to[static_cast<int>(
                Route::kScalarReference)],
            1);
  EXPECT_EQ(stats.recovery.recovered_on[static_cast<int>(
                Route::kScalarReference)],
            1);
  EXPECT_GE(stats.recovery.retries, 4);
  EXPECT_TRUE(bitwise_equal(out, ref));
  // Every detection resolves one way or another under the default
  // ladder (throw terminal would have escaped the call).
  EXPECT_EQ(stats.abft_recovered + stats.abft_false_alarms,
            stats.abft_detected);
}

TEST(Resilience, QuarantineSkipsTheLadderOnTheNextCall) {
  const Problem p = make(32, 32, 64, 78);
  const core::M3xuEngine clean{core::M3xuConfig{}};
  Matrix<float> ref = p.c;
  tiled_sgemm(clean, single_tile_cfg(), p.a, p.b, ref);

  const fault::FaultInjector inj(
      99, fault::SiteRates::only(fault::Site::kAccumulator, 1.0));
  core::M3xuConfig cfg;
  cfg.injector = &inj;
  const core::M3xuEngine eng(cfg);
  TileQuarantine quarantine;
  RecoveryPolicy policy;
  policy.quarantine = &quarantine;

  Matrix<float> out1 = p.c;
  const TiledGemmStats s1 = tiled_sgemm(eng, single_tile_cfg(), abft_on(),
                                        policy, ExecConfig{}, p.a, p.b, out1);
  EXPECT_EQ(s1.recovery.demotions, 3);
  EXPECT_EQ(s1.recovery.quarantined, 1);
  EXPECT_EQ(quarantine.size(), 1u);
  EXPECT_TRUE(bitwise_equal(out1, ref));

  // Second call: the tile starts directly on the quarantined scalar
  // rung - still detected (the primary pass is faulty), but recovery
  // needs zero demotions now.
  Matrix<float> out2 = p.c;
  const TiledGemmStats s2 = tiled_sgemm(eng, single_tile_cfg(), abft_on(),
                                        policy, ExecConfig{}, p.a, p.b, out2);
  EXPECT_EQ(s2.recovery.quarantine_hits, 1);
  EXPECT_EQ(s2.recovery.demotions, 0);
  EXPECT_TRUE(bitwise_equal(out2, ref));
}

TEST(Resilience, TerminalThrowCarriesTileAndRouteContext) {
  // Floor at the top rung with persistent faults: the ladder cannot
  // demote, so the terminal fires after retries_per_route attempts.
  const Problem p = make(32, 32, 64, 79);
  const fault::FaultInjector inj(
      7, fault::SiteRates::only(fault::Site::kAccumulator, 1.0));
  core::M3xuConfig cfg;
  cfg.injector = &inj;
  const core::M3xuEngine eng(cfg);
  RecoveryPolicy policy;
  policy.floor = Route::kMicrokernel;
  policy.retries_per_route = 2;
  Matrix<float> out = p.c;
  try {
    tiled_sgemm(eng, single_tile_cfg(), abft_on(), policy, ExecConfig{}, p.a,
                p.b, out);
    FAIL() << "expected AbftFailure";
  } catch (const AbftFailure& e) {
    EXPECT_EQ(e.tile_row(), 0);
    EXPECT_EQ(e.tile_col(), 0);
    EXPECT_EQ(e.route(), Route::kMicrokernel);
    EXPECT_EQ(e.attempts(), 2);
  }
}

TEST(Resilience, TerminalPoisonOverwritesTheTileWithNaNs) {
  const Problem p = make(32, 32, 64, 80);
  const fault::FaultInjector inj(
      8, fault::SiteRates::only(fault::Site::kAccumulator, 1.0));
  core::M3xuConfig cfg;
  cfg.injector = &inj;
  const core::M3xuEngine eng(cfg);
  RecoveryPolicy policy;
  policy.floor = Route::kMicrokernel;
  policy.terminal = RecoveryPolicy::Terminal::kPoison;
  Matrix<float> out = p.c;
  const TiledGemmStats stats = tiled_sgemm(eng, single_tile_cfg(), abft_on(),
                                           policy, ExecConfig{}, p.a, p.b,
                                           out);
  EXPECT_EQ(stats.recovery.poisoned_tiles, 1);
  EXPECT_EQ(stats.recovery.degraded_tiles, 0);
  for (int i = 0; i < out.rows(); ++i) {
    for (int j = 0; j < out.cols(); ++j) {
      ASSERT_TRUE(std::isnan(out(i, j))) << i << "," << j;
    }
  }
}

TEST(Resilience, TerminalDegradeKeepsTheSuspectResult) {
  const Problem p = make(32, 32, 64, 81);
  const fault::FaultInjector inj(
      9, fault::SiteRates::only(fault::Site::kAccumulator, 1.0));
  core::M3xuConfig cfg;
  cfg.injector = &inj;
  const core::M3xuEngine eng(cfg);
  RecoveryPolicy policy;
  policy.floor = Route::kMicrokernel;
  policy.terminal = RecoveryPolicy::Terminal::kDegrade;
  Matrix<float> out = p.c;
  const TiledGemmStats stats = tiled_sgemm(eng, single_tile_cfg(), abft_on(),
                                           policy, ExecConfig{}, p.a, p.b,
                                           out);
  EXPECT_EQ(stats.recovery.degraded_tiles, 1);
  EXPECT_EQ(stats.recovery.poisoned_tiles, 0);
}

TEST(Resilience, AllocFailureFallsBackBitExact) {
  // Every staged K-block loses its packed panels; the per-dot fallback
  // must deliver the same bits with no ABFT involvement.
  const Problem p = make(64, 64, 64, 82);
  const core::M3xuEngine clean{core::M3xuConfig{}};
  const TileConfig tile{32, 32, 32, 16, 16};  // 2x2 tile grid
  Matrix<float> ref = p.c;
  tiled_sgemm(clean, tile, p.a, p.b, ref);

  const fault::FaultInjector inj(
      5, fault::SiteRates::only(fault::Site::kAllocFailure, 1.0));
  core::M3xuConfig cfg;
  cfg.injector = &inj;
  const core::M3xuEngine eng(cfg);
  Matrix<float> out = p.c;
  const TiledGemmStats stats = tiled_sgemm(eng, tile, abft_on(),
                                           RecoveryPolicy{}, ExecConfig{},
                                           p.a, p.b, out);
  EXPECT_TRUE(bitwise_equal(out, ref));
  EXPECT_EQ(stats.abft_detected, 0);
  EXPECT_EQ(stats.recovery.alloc_fallbacks, stats.mainloop_iterations);
}

TEST(Resilience, AllocFailureFallsBackBitExactComplex) {
  using C = std::complex<float>;
  Matrix<C> a(32, 64), b(64, 32), c0(32, 32);
  Rng rng(83);
  fill_random(a, rng);
  fill_random(b, rng);
  fill_random(c0, rng);
  const core::M3xuEngine clean{core::M3xuConfig{}};
  Matrix<C> ref = c0;
  tiled_cgemm(clean, single_tile_cfg(), a, b, ref);

  const fault::FaultInjector inj(
      6, fault::SiteRates::only(fault::Site::kAllocFailure, 1.0));
  core::M3xuConfig cfg;
  cfg.injector = &inj;
  const core::M3xuEngine eng(cfg);
  Matrix<C> out = c0;
  const TiledGemmStats stats = tiled_cgemm(eng, single_tile_cfg(), abft_on(),
                                           RecoveryPolicy{}, ExecConfig{}, a,
                                           b, out);
  EXPECT_GT(stats.recovery.alloc_fallbacks, 0);
  for (int i = 0; i < 32; ++i) {
    for (int j = 0; j < 32; ++j) {
      ASSERT_EQ(bits32(out(i, j).real()), bits32(ref(i, j).real()));
      ASSERT_EQ(bits32(out(i, j).imag()), bits32(ref(i, j).imag()));
    }
  }
}

TEST(Resilience, StagedPanelFaultsNeverEscapeAboveTolerance) {
  // Staged-panel flips may land below the checksum tolerance (benign)
  // or above it (must be detected + repaired). Either way the result
  // the driver returns must never deviate beyond the detectability
  // bar.
  const Problem p = make(32, 32, 64, 84);
  const core::M3xuEngine clean{core::M3xuConfig{}};
  const AbftConfig abft = abft_on();
  Matrix<float> ref = p.c;
  tiled_sgemm(clean, single_tile_cfg(), p.a, p.b, ref);
  long detections = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const fault::FaultInjector inj(
        seed, fault::SiteRates::only(fault::Site::kStagedPanel, 2e-3));
    core::M3xuConfig cfg;
    cfg.injector = &inj;
    const core::M3xuEngine eng(cfg);
    Matrix<float> out = p.c;
    const TiledGemmStats stats = tiled_sgemm(eng, single_tile_cfg(), abft,
                                             RecoveryPolicy{}, ExecConfig{},
                                             p.a, p.b, out);
    detections += stats.abft_detected;
    EXPECT_EQ(stats.abft_recovered + stats.abft_false_alarms,
              stats.abft_detected);
    for (int j = 0; j < 32; ++j) {
      const double limit = 2.0 * abft_column_tolerance(
                                     clean, single_tile_cfg(), abft, p.a,
                                     p.b, p.c, 0, 32, j);
      for (int i = 0; i < 32; ++i) {
        const double dev = std::fabs(static_cast<double>(out(i, j)) -
                                     static_cast<double>(ref(i, j)));
        ASSERT_TRUE(dev <= limit) << "seed " << seed << " at " << i << ","
                                  << j;
      }
    }
  }
  // At a 2e-3 per-scalar rate over 12 seeds the guard must have seen
  // real work (each pass stages ~6k scalars).
  EXPECT_GT(detections, 0);
}

TEST(Resilience, NaNInputTripsTheChecksumAsFalseAlarmNotEscape) {
  // A NaN residual fails the negated-<= comparison, so poisoned
  // inputs surface as a detection; the clean reproduction then proves
  // the false alarm and the NaN propagates honestly.
  Problem p = make(32, 32, 64, 85);
  p.c(3, 4) = std::numeric_limits<float>::quiet_NaN();
  const core::M3xuEngine clean{core::M3xuConfig{}};
  Matrix<float> out = p.c;
  const TiledGemmStats stats =
      tiled_sgemm(clean, single_tile_cfg(), abft_on(), p.a, p.b, out);
  EXPECT_EQ(stats.abft_detected, 1);
  EXPECT_EQ(stats.abft_false_alarms, 1);
  EXPECT_TRUE(std::isnan(out(3, 4)));
}

TEST(Resilience, LegacyModeMatchesLegacyOverloadUnderInjection) {
  // policy.demote == false must reproduce the legacy detect/recompute
  // protocol bit-for-bit, including the stats it reports.
  const Problem p = make(32, 32, 64, 86);
  const fault::SiteRates rates =
      fault::SiteRates::only(fault::Site::kOperandA, 1e-3);

  const fault::FaultInjector inj_a(42, rates);
  core::M3xuConfig cfg_a;
  cfg_a.injector = &inj_a;
  const core::M3xuEngine eng_a(cfg_a);
  Matrix<float> out_a = p.c;
  const TiledGemmStats legacy =
      tiled_sgemm(eng_a, single_tile_cfg(), abft_on(), p.a, p.b, out_a);

  const fault::FaultInjector inj_b(42, rates);
  core::M3xuConfig cfg_b;
  cfg_b.injector = &inj_b;
  const core::M3xuEngine eng_b(cfg_b);
  RecoveryPolicy no_ladder;
  no_ladder.demote = false;
  Matrix<float> out_b = p.c;
  const TiledGemmStats compat = tiled_sgemm(eng_b, single_tile_cfg(),
                                            abft_on(), no_ladder,
                                            ExecConfig{}, p.a, p.b, out_b);

  EXPECT_TRUE(bitwise_equal(out_a, out_b));
  EXPECT_EQ(legacy.abft_detected, compat.abft_detected);
  EXPECT_EQ(legacy.abft_recomputed, compat.abft_recomputed);
  EXPECT_EQ(legacy.abft_recovered, compat.abft_recovered);
  EXPECT_EQ(legacy.abft_false_alarms, compat.abft_false_alarms);
  // Legacy mode never engages the ladder.
  EXPECT_EQ(legacy.recovery.retries, 0);
  EXPECT_EQ(compat.recovery.retries, 0);
  EXPECT_EQ(compat.recovery.demotions, 0);
  EXPECT_EQ(total_recovered(compat.recovery), 0);
}

TEST(Resilience, CleanResilientPathBitIdenticalToUnguarded) {
  // The full resilient configuration on a clean engine changes nothing
  // about the numerics.
  const Problem p = make(64, 48, 96, 87);
  const core::M3xuEngine clean{core::M3xuConfig{}};
  const TileConfig tile{32, 32, 32, 16, 16};
  Matrix<float> ref = p.c;
  tiled_sgemm(clean, tile, p.a, p.b, ref);
  TileQuarantine quarantine;
  RecoveryPolicy policy;
  policy.quarantine = &quarantine;
  CancellationToken token;
  ExecConfig exec;
  exec.token = &token;
  exec.deadline_ms = 60'000;
  exec.stall_ms = 60'000;
  Matrix<float> out = p.c;
  const TiledGemmStats stats =
      tiled_sgemm(clean, tile, abft_on(), policy, exec, p.a, p.b, out);
  EXPECT_TRUE(bitwise_equal(out, ref));
  EXPECT_EQ(stats.abft_detected, 0);
  EXPECT_EQ(stats.recovery.retries, 0);
  EXPECT_EQ(quarantine.size(), 0u);
}

TEST(Resilience, CancellationTokenAbortsTheDriver) {
  const Problem p = make(96, 96, 64, 88);
  const core::M3xuEngine clean{core::M3xuConfig{}};
  const TileConfig tile{32, 32, 32, 16, 16};
  CancellationToken token;
  token.request_cancel("test abort");
  ExecConfig exec;
  exec.token = &token;
  Matrix<float> out = p.c;
  EXPECT_THROW(tiled_sgemm(clean, tile, abft_on(), RecoveryPolicy{}, exec,
                           p.a, p.b, out),
               CancelledError);
}

}  // namespace
}  // namespace m3xu::gemm
