// Request-scoped TraceContext tests: event ordering and arguments,
// event_once dedup, the bounded log + drop counter, process-unique
// monotonic event ids under the thread pool, thread-local scope
// nesting, JSON export round-trips, and stable trace/span export
// ordering across repeated exports (the PR 8 immortal-registry
// teardown path). Every test also compiles and passes with
// M3XU_TELEMETRY=OFF, where the context is a no-op.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "telemetry/json.hpp"
#include "telemetry/trace.hpp"
#include "telemetry/trace_context.hpp"

namespace telemetry = m3xu::telemetry;

TEST(TraceContext, EventsAreSeqOrderedWithArgs) {
  telemetry::TraceContext ctx("tenant-a", "sgemm.8x8x8");
  ctx.event("request.submit", 3, 250);
  ctx.event("abft.detect", 7, 0, "tile 7 checksum");
  ctx.event("request.done");
  const std::vector<telemetry::TraceEvent> events = ctx.events();
#if M3XU_TELEMETRY_ENABLED
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[2].seq, 2u);
  EXPECT_STREQ(events[0].name, "request.submit");
  EXPECT_EQ(events[0].a0, 3);
  EXPECT_EQ(events[0].a1, 250);
  EXPECT_EQ(events[1].detail, "tile 7 checksum");
  EXPECT_EQ(events[2].a0, -1);
  // Timestamps are causally ordered within one thread.
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
  EXPECT_LE(events[1].ts_ns, events[2].ts_ns);
  EXPECT_GT(ctx.request_id(), 0u);
  EXPECT_EQ(ctx.tenant(), "tenant-a");
  EXPECT_EQ(ctx.label(), "sgemm.8x8x8");
#else
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(ctx.request_id(), 0u);
#endif
}

TEST(TraceContext, RequestIdsAreUniqueAndMonotonic) {
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    telemetry::TraceContext ctx("t", "l");
    ids.push_back(ctx.request_id());
  }
#if M3XU_TELEMETRY_ENABLED
  for (std::size_t i = 1; i < ids.size(); ++i) {
    EXPECT_LT(ids[i - 1], ids[i]);
  }
#endif
}

TEST(TraceContext, EventOnceDeduplicatesByNameText) {
  telemetry::TraceContext ctx("t", "l");
  // Distinct pointers with equal text must still dedup (the core route
  // hooks pass literals from different translation units).
  const std::string name1 = "core.fp32.route.generic";
  const std::string name2 = "core.fp32.route.generic";
  const bool first = ctx.event_once(name1.c_str(), 1);
  const bool second = ctx.event_once(name2.c_str(), 2);
  ctx.event("other");
  const bool third = ctx.event_once(name1.c_str());
#if M3XU_TELEMETRY_ENABLED
  EXPECT_TRUE(first);
  EXPECT_FALSE(second);
  EXPECT_FALSE(third);
  ASSERT_EQ(ctx.events().size(), 2u);
  EXPECT_EQ(ctx.events()[0].a0, 1);  // the first call's args won
#else
  EXPECT_FALSE(first);
  EXPECT_FALSE(second);
  EXPECT_FALSE(third);
#endif
}

TEST(TraceContext, LogIsBoundedAndCountsDrops) {
  telemetry::TraceContext ctx("t", "l");
  const std::size_t total = telemetry::kMaxTraceEvents + 100;
  for (std::size_t i = 0; i < total; ++i) {
    ctx.event("flood", static_cast<long>(i));
  }
#if M3XU_TELEMETRY_ENABLED
  EXPECT_EQ(ctx.events().size(), telemetry::kMaxTraceEvents);
  EXPECT_EQ(ctx.dropped(), 100u);
  // The retained prefix is the oldest events, in order.
  EXPECT_EQ(ctx.events().front().a0, 0);
  EXPECT_EQ(ctx.events().back().a0,
            static_cast<long>(telemetry::kMaxTraceEvents - 1));
#else
  EXPECT_TRUE(ctx.events().empty());
  EXPECT_EQ(ctx.dropped(), 0u);
#endif
}

// Satellite: event ids must be unique and per-thread monotonic even
// when many pool threads log into many contexts concurrently.
TEST(TraceContext, EventIdsUniqueAcrossPoolThreads) {
  constexpr int kContexts = 4;
  constexpr std::size_t kEventsPerContext = 400;  // below the log bound
  std::vector<std::unique_ptr<telemetry::TraceContext>> contexts;
  for (int c = 0; c < kContexts; ++c) {
    contexts.push_back(
        std::make_unique<telemetry::TraceContext>("t", "hammer"));
  }
  m3xu::parallel_for(kContexts * kEventsPerContext, [&](std::size_t i) {
    contexts[i % kContexts]->event("hammer", static_cast<long>(i));
  });
#if M3XU_TELEMETRY_ENABLED
  std::set<std::uint64_t> ids;
  for (const auto& ctx : contexts) {
    const std::vector<telemetry::TraceEvent> events = ctx->events();
    ASSERT_EQ(events.size(), kEventsPerContext);
    EXPECT_EQ(ctx->dropped(), 0u);
    std::set<std::uint64_t> seqs;
    for (const telemetry::TraceEvent& e : events) {
      EXPECT_GT(e.id, 0u);
      ids.insert(e.id);
      seqs.insert(e.seq);
    }
    // seq is a dense 0..n-1 ordering within the context.
    EXPECT_EQ(seqs.size(), kEventsPerContext);
    EXPECT_EQ(*seqs.begin(), 0u);
    EXPECT_EQ(*seqs.rbegin(), kEventsPerContext - 1);
  }
  // Every event id is process-unique across contexts and threads.
  EXPECT_EQ(ids.size(), kContexts * kEventsPerContext);
#endif
}

TEST(TraceContext, ScopeInstallsAndRestoresNested) {
  EXPECT_EQ(telemetry::current_trace_context(), nullptr);
  telemetry::TraceContext outer("t", "outer");
  telemetry::TraceContext inner("t", "inner");
  {
    telemetry::TraceContextScope outer_scope(&outer);
#if M3XU_TELEMETRY_ENABLED
    EXPECT_EQ(telemetry::current_trace_context(), &outer);
    {
      telemetry::TraceContextScope inner_scope(&inner);
      EXPECT_EQ(telemetry::current_trace_context(), &inner);
      // A null scope means "no tracing" without disturbing restore.
      {
        telemetry::TraceContextScope null_scope(nullptr);
        EXPECT_EQ(telemetry::current_trace_context(), nullptr);
      }
      EXPECT_EQ(telemetry::current_trace_context(), &inner);
    }
    EXPECT_EQ(telemetry::current_trace_context(), &outer);
#endif
  }
  EXPECT_EQ(telemetry::current_trace_context(), nullptr);
}

TEST(TraceContext, ScopeIsPerThread) {
  telemetry::TraceContext ctx("t", "l");
  telemetry::TraceContextScope scope(&ctx);
  telemetry::TraceContext* seen_on_other_thread = &ctx;
  std::thread t([&] { seen_on_other_thread = telemetry::current_trace_context(); });
  t.join();
  EXPECT_EQ(seen_on_other_thread, nullptr);
}

TEST(TraceContext, JsonExportParsesAndCarriesEvents) {
  telemetry::TraceContext ctx("tenant \"q\"", "sgemm.4x4x4");
  ctx.event("request.submit", 1, 2);
  ctx.event("abft.detect", 5, -1, "path\\with\t\"escapes\"");
  const std::string json = ctx.to_json();
  const auto doc = telemetry::JsonValue::parse(json);
  ASSERT_TRUE(doc.has_value());
#if M3XU_TELEMETRY_ENABLED
  EXPECT_EQ(doc->find("request_id")->as_uint(), ctx.request_id());
  EXPECT_EQ(doc->find("tenant")->as_string(), "tenant \"q\"");
  EXPECT_EQ(doc->find("label")->as_string(), "sgemm.4x4x4");
  EXPECT_EQ(doc->find("dropped_events")->as_uint(), 0u);
  const telemetry::JsonValue* events = doc->find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 2u);
  const telemetry::JsonValue& e0 = events->at(0);
  EXPECT_EQ(e0.find("name")->as_string(), "request.submit");
  EXPECT_EQ(e0.find("seq")->as_uint(), 0u);
  EXPECT_EQ(e0.find("a0")->as_int(), 1);
  EXPECT_EQ(e0.find("a1")->as_int(), 2);
  // ts_us is span-origin-relative for Perfetto overlay; ts_ns is the
  // shared clock. Both must be present and consistent-ordered.
  ASSERT_NE(e0.find("ts_ns"), nullptr);
  ASSERT_NE(e0.find("ts_us"), nullptr);
  const telemetry::JsonValue& e1 = events->at(1);
  EXPECT_EQ(e1.find("detail")->as_string(), "path\\with\t\"escapes\"");
  EXPECT_LE(e0.find("ts_ns")->as_uint(), e1.find("ts_ns")->as_uint());
  // Unused args are omitted from the export entirely.
  EXPECT_EQ(e1.find("a1"), nullptr);
#else
  EXPECT_EQ(json, "{}");
#endif
}

// Satellite: exporting the span trace twice - after pool threads have
// created and retired spans - must produce identical documents, so
// flush ordering at shutdown is deterministic (stable sort over
// retired rings).
TEST(TraceContext, TraceJsonExportIsStableAcrossCalls) {
  // Seed spans from short-lived threads so their rings detach and land
  // in the registry's retired list in a nondeterministic order.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 8; ++i) {
        telemetry::ScopedTimer span(t % 2 == 0 ? "span.even" : "span.odd");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::string first = telemetry::trace_json();
  const std::string second = telemetry::trace_json();
  EXPECT_EQ(first, second);
  const auto doc = telemetry::JsonValue::parse(first);
  ASSERT_TRUE(doc.has_value());
}
