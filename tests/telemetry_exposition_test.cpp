// Metrics exposition tests: Prometheus text rendering (counters,
// cumulative histogram buckets, name sanitization), the dependency-free
// line-format lint (positive and negative cases), the JSON snapshot
// document, file dumps, and the MetricsDumper background triggers
// (manual, periodic, signal). Synthetic Snapshot inputs keep the
// rendering tests exact in both M3XU_TELEMETRY builds; the
// registry-backed paths degrade to empty-but-valid documents when
// telemetry is compiled out.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "telemetry/exposition.hpp"
#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"

namespace telemetry = m3xu::telemetry;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

telemetry::Snapshot synthetic_snapshot() {
  telemetry::Snapshot snap;
  snap.counters.emplace_back("serve.requests.ok", 41u);
  snap.counters.emplace_back("odd name-with.chars", 7u);
  telemetry::Snapshot::HistogramValue h;
  h.name = "serve.request_latency_ns";
  h.buckets[3] = 2;   // values with bit width 3 (<= 7)
  h.buckets[10] = 5;  // values with bit width 10 (<= 1023)
  h.count = 7;
  h.sum = 4000;
  snap.histograms.push_back(h);
  return snap;
}

}  // namespace

TEST(PrometheusName, SanitizesAndPrefixes) {
  EXPECT_EQ(telemetry::prometheus_name("serve.requests.ok"),
            "m3xu_serve_requests_ok");
  EXPECT_EQ(telemetry::prometheus_name("odd name-with.chars"),
            "m3xu_odd_name_with_chars");
  EXPECT_EQ(telemetry::prometheus_name("already_fine:ok"),
            "m3xu_already_fine:ok");
}

TEST(PrometheusText, RendersCountersAndCumulativeHistograms) {
  const std::string text = telemetry::prometheus_text(synthetic_snapshot());
  EXPECT_NE(text.find("# TYPE m3xu_serve_requests_ok counter"),
            std::string::npos);
  EXPECT_NE(text.find("m3xu_serve_requests_ok 41"), std::string::npos);
  EXPECT_NE(text.find("# TYPE m3xu_serve_request_latency_ns histogram"),
            std::string::npos);
  // Bit-width bucket 3 has upper bound 2^3 - 1 = 7; cumulative count
  // at le="1023" includes both populated buckets.
  EXPECT_NE(text.find("m3xu_serve_request_latency_ns_bucket{le=\"7\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("m3xu_serve_request_latency_ns_bucket{le=\"1023\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("m3xu_serve_request_latency_ns_bucket{le=\"+Inf\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("m3xu_serve_request_latency_ns_sum 4000"),
            std::string::npos);
  EXPECT_NE(text.find("m3xu_serve_request_latency_ns_count 7"),
            std::string::npos);
  std::string error;
  EXPECT_TRUE(telemetry::prometheus_lint(text, &error)) << error;
}

TEST(PrometheusText, LiveRegistryRenderingPassesLint) {
  static telemetry::Counter ctr("test.exposition.live");
  static telemetry::Histogram hist("test.exposition.live_hist");
  ctr.add(3);
  hist.record(1000);
  const std::string text = telemetry::prometheus_text();
  std::string error;
  EXPECT_TRUE(telemetry::prometheus_lint(text, &error)) << error;
#if M3XU_TELEMETRY_ENABLED
  EXPECT_NE(text.find("m3xu_test_exposition_live"), std::string::npos);
#endif
}

TEST(PrometheusLint, RejectsMalformedDocuments) {
  std::string error;
  // Sample without a preceding TYPE declaration.
  EXPECT_FALSE(telemetry::prometheus_lint("m3xu_orphan 1\n", &error));
  // Unknown metric kind.
  EXPECT_FALSE(telemetry::prometheus_lint(
      "# TYPE m3xu_g gauge_oops\nm3xu_g 1\n", &error));
  // Invalid metric name.
  EXPECT_FALSE(telemetry::prometheus_lint(
      "# TYPE 9bad counter\n9bad 1\n", &error));
  // Non-numeric value.
  EXPECT_FALSE(telemetry::prometheus_lint(
      "# TYPE m3xu_c counter\nm3xu_c banana\n", &error));
  // Negative counter.
  EXPECT_FALSE(telemetry::prometheus_lint(
      "# TYPE m3xu_c counter\nm3xu_c -4\n", &error));
  // Unterminated label value.
  EXPECT_FALSE(telemetry::prometheus_lint(
      "# TYPE m3xu_h histogram\nm3xu_h_bucket{le=\"7} 1\n", &error));
  // Histogram whose cumulative buckets decrease.
  EXPECT_FALSE(telemetry::prometheus_lint(
      "# TYPE m3xu_h histogram\n"
      "m3xu_h_bucket{le=\"1\"} 5\n"
      "m3xu_h_bucket{le=\"2\"} 3\n"
      "m3xu_h_bucket{le=\"+Inf\"} 5\n"
      "m3xu_h_sum 9\nm3xu_h_count 5\n",
      &error));
  // +Inf bucket disagreeing with _count.
  EXPECT_FALSE(telemetry::prometheus_lint(
      "# TYPE m3xu_h histogram\n"
      "m3xu_h_bucket{le=\"+Inf\"} 5\n"
      "m3xu_h_sum 9\nm3xu_h_count 6\n",
      &error));
  EXPECT_FALSE(error.empty());
}

TEST(PrometheusLint, AcceptsEmptyAndCommentOnlyDocuments) {
  std::string error;
  EXPECT_TRUE(telemetry::prometheus_lint("", &error)) << error;
  EXPECT_TRUE(telemetry::prometheus_lint("# just a comment\n\n", &error))
      << error;
}

TEST(SnapshotJson, ParsesWithSchemaVersion) {
  const std::string json = telemetry::snapshot_json(synthetic_snapshot());
  const auto doc = telemetry::JsonValue::parse(json);
  ASSERT_TRUE(doc.has_value());
  ASSERT_NE(doc->find("schema_version"), nullptr);
  EXPECT_EQ(doc->find("schema_version")->as_int(),
            telemetry::kExpositionSchemaVersion);
  const telemetry::JsonValue* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  const telemetry::JsonValue* ok = counters->find("serve.requests.ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->as_uint(), 41u);
  ASSERT_NE(doc->find("histograms"), nullptr);
}

TEST(Exposition, WritesBothRenderingsToFiles) {
  const std::string prom_path = ::testing::TempDir() + "exposition_test.prom";
  const std::string json_path = ::testing::TempDir() + "exposition_test.json";
  ASSERT_TRUE(telemetry::write_prometheus(prom_path));
  ASSERT_TRUE(telemetry::write_snapshot_json(json_path));
  std::string error;
  EXPECT_TRUE(telemetry::prometheus_lint(read_file(prom_path), &error))
      << error;
  EXPECT_TRUE(telemetry::JsonValue::parse(read_file(json_path)).has_value());
  std::remove(prom_path.c_str());
  std::remove(json_path.c_str());
}

TEST(Exposition, WriteFailsOnUnwritablePath) {
  EXPECT_FALSE(telemetry::write_prometheus("/nonexistent-dir/x.prom"));
  EXPECT_FALSE(telemetry::write_snapshot_json("/nonexistent-dir/x.json"));
}

TEST(MetricsDumper, ManualDumpWritesFiles) {
  telemetry::DumpOptions opts;
  opts.prometheus_path = ::testing::TempDir() + "dumper_manual.prom";
  opts.json_path = ::testing::TempDir() + "dumper_manual.json";
  telemetry::MetricsDumper dumper(opts);
  EXPECT_TRUE(dumper.dump_now());
  EXPECT_GE(dumper.dumps(), 1u);
  std::string error;
  EXPECT_TRUE(
      telemetry::prometheus_lint(read_file(opts.prometheus_path), &error))
      << error;
  EXPECT_TRUE(
      telemetry::JsonValue::parse(read_file(opts.json_path)).has_value());
  dumper.stop();
  std::remove(opts.prometheus_path.c_str());
  std::remove(opts.json_path.c_str());
}

TEST(MetricsDumper, PeriodicDumpFires) {
  telemetry::DumpOptions opts;
  opts.prometheus_path = ::testing::TempDir() + "dumper_periodic.prom";
  opts.period_ms = 20;
  telemetry::MetricsDumper dumper(opts);
  for (int i = 0; i < 200 && dumper.dumps() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(dumper.dumps(), 1u);
  dumper.stop();
  std::remove(opts.prometheus_path.c_str());
}

TEST(MetricsDumper, SignalTriggersDump) {
  telemetry::DumpOptions opts;
  opts.prometheus_path = ::testing::TempDir() + "dumper_signal.prom";
  opts.signal_number = SIGUSR1;
  telemetry::MetricsDumper dumper(opts);
  std::raise(SIGUSR1);
  for (int i = 0; i < 200 && dumper.dumps() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(dumper.dumps(), 1u);
  dumper.stop();
  // The previous handler is restored: raising again must not crash or
  // dump further (default SIGUSR1 disposition was replaced by ignore
  // here to keep the test alive).
  std::signal(SIGUSR1, SIG_IGN);
  std::raise(SIGUSR1);
  const std::uint64_t after_stop = dumper.dumps();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(dumper.dumps(), after_stop);
  std::remove(opts.prometheus_path.c_str());
}
