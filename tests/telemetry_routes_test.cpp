// Cross-checks the tiled driver's hand-maintained TiledGemmStats
// against the engine/pack telemetry counters: the two are independent
// bookkeeping paths over the same work, so aligned geometries must
// agree exactly. Also pins the per-dot element counter and the ABFT
// counter mirror. In M3XU_TELEMETRY=OFF builds the counter deltas are
// all zero while TiledGemmStats still counts; both branches are
// asserted.
#include <gtest/gtest.h>

#include <complex>
#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "core/mxu.hpp"
#include "gemm/matrix.hpp"
#include "gemm/tiled_driver.hpp"
#include "telemetry/telemetry.hpp"

namespace telemetry = m3xu::telemetry;
using m3xu::Rng;
using m3xu::core::M3xuEngine;
using m3xu::gemm::Matrix;
using m3xu::gemm::TiledGemmStats;

namespace {

/// Engine-side (output element, K-chunk) pairs attributed to `family`
/// ("fp32" or "fp32c") between two snapshots. Every route counts each
/// pair exactly once: the fused fast path, its per-term fallback, the
/// generic (special/injector) path, and the microkernel's block pairs.
std::uint64_t element_chunk_pairs(const telemetry::Snapshot& after,
                                  const telemetry::Snapshot& before,
                                  const std::string& family) {
  const std::string base = "mxu." + family;
  return after.counter_delta(before, base + ".chunks.fused") +
         after.counter_delta(before, base + ".chunks.fallback") +
         after.counter_delta(before, base + ".chunks.generic") +
         after.counter_delta(before, base + ".microkernel.pair_chunks");
}

std::uint64_t packed_elements(const telemetry::Snapshot& after,
                              const telemetry::Snapshot& before,
                              const std::string& family) {
  return after.counter_delta(before, "pack." + family + ".a_elements") +
         after.counter_delta(before, "pack." + family + ".b_elements");
}

}  // namespace

TEST(TelemetryRoutes, TiledSgemmStatsMatchEngineCounters) {
  // Aligned everywhere: 128x128x64 against the default 128/128/32
  // tile with 64x32 warps, so instr_count has no ceil slack and
  // stats.mma_instructions * (inst_m * inst_n) is exactly the number
  // of (element, chunk) pairs the engine routes.
  const int m = 128, n = 128, k = 64;
  Rng rng(7);
  Matrix<float> a(m, k), b(k, n), c(m, n);
  m3xu::gemm::fill_random(a, rng);
  m3xu::gemm::fill_random(b, rng);
  c.fill(0.0f);
  const M3xuEngine engine;
  const m3xu::gemm::TileConfig cfg;
  const telemetry::Snapshot before = telemetry::snapshot();
  const TiledGemmStats stats = m3xu::gemm::tiled_sgemm(engine, cfg, a, b, c);
  const telemetry::Snapshot after = telemetry::snapshot();
  ASSERT_GT(stats.mma_instructions, 0);
  const m3xu::core::MmaShape shape =
      m3xu::core::shape_for(m3xu::core::MxuMode::kFp32);
#if M3XU_TELEMETRY_ENABLED
  EXPECT_EQ(element_chunk_pairs(after, before, "fp32"),
            static_cast<std::uint64_t>(stats.mma_instructions) * shape.m *
                shape.n);
  EXPECT_DOUBLE_EQ(
      static_cast<double>(packed_elements(after, before, "fp32")) *
          sizeof(float),
      stats.staged_bytes);
#else
  EXPECT_EQ(element_chunk_pairs(after, before, "fp32"), 0u);
  EXPECT_EQ(packed_elements(after, before, "fp32"), 0u);
#endif
}

TEST(TelemetryRoutes, TiledSgemmUnalignedGeometry) {
  // Unaligned edges: instr_count rounds partial instructions up, so
  // the engine pair count (exact per element) can only be smaller.
  // The per-element chunk count is still exact and checkable.
  const int m = 100, n = 90, k = 50;
  Rng rng(11);
  Matrix<float> a(m, k), b(k, n), c(m, n);
  m3xu::gemm::fill_random(a, rng);
  m3xu::gemm::fill_random(b, rng);
  c.fill(0.0f);
  const M3xuEngine engine;
  m3xu::gemm::TileConfig cfg;
  const int inst_k = m3xu::core::shape_for(m3xu::core::MxuMode::kFp32).k;
  std::uint64_t chunks = 0;  // sum over mainloop panels of ceil(kc / inst_k)
  for (int k0 = 0; k0 < k; k0 += cfg.block_k) {
    const int kc = std::min(cfg.block_k, k - k0);
    chunks += static_cast<std::uint64_t>((kc + inst_k - 1) / inst_k);
  }
  const telemetry::Snapshot before = telemetry::snapshot();
  const TiledGemmStats stats = m3xu::gemm::tiled_sgemm(engine, cfg, a, b, c);
  const telemetry::Snapshot after = telemetry::snapshot();
  const m3xu::core::MmaShape shape =
      m3xu::core::shape_for(m3xu::core::MxuMode::kFp32);
#if M3XU_TELEMETRY_ENABLED
  const std::uint64_t pairs = element_chunk_pairs(after, before, "fp32");
  EXPECT_EQ(pairs, static_cast<std::uint64_t>(m) * n * chunks);
  EXPECT_LE(pairs, static_cast<std::uint64_t>(stats.mma_instructions) *
                       shape.m * shape.n);
  EXPECT_DOUBLE_EQ(
      static_cast<double>(packed_elements(after, before, "fp32")) *
          sizeof(float),
      stats.staged_bytes);
#else
  EXPECT_EQ(element_chunk_pairs(after, before, "fp32"), 0u);
#endif
}

TEST(TelemetryRoutes, TiledCgemmStatsMatchEngineCounters) {
  const int m = 64, n = 64, k = 32;
  Rng rng(23);
  Matrix<std::complex<float>> a(m, k), b(k, n), c(m, n);
  m3xu::gemm::fill_random(a, rng);
  m3xu::gemm::fill_random(b, rng);
  c.fill({});
  const M3xuEngine engine;
  m3xu::gemm::TileConfig cfg;
  cfg.block_m = 64;
  cfg.block_n = 64;
  cfg.block_k = 16;
  cfg.warp_m = 32;
  cfg.warp_n = 32;
  const telemetry::Snapshot before = telemetry::snapshot();
  const TiledGemmStats stats = m3xu::gemm::tiled_cgemm(engine, cfg, a, b, c);
  const telemetry::Snapshot after = telemetry::snapshot();
  ASSERT_GT(stats.mma_instructions, 0);
  const m3xu::core::MmaShape shape =
      m3xu::core::shape_for(m3xu::core::MxuMode::kFp32Complex);
#if M3XU_TELEMETRY_ENABLED
  EXPECT_EQ(element_chunk_pairs(after, before, "fp32c"),
            static_cast<std::uint64_t>(stats.mma_instructions) * shape.m *
                shape.n);
  EXPECT_DOUBLE_EQ(
      static_cast<double>(packed_elements(after, before, "fp32c")) *
          sizeof(std::complex<float>),
      stats.staged_bytes);
#else
  EXPECT_EQ(element_chunk_pairs(after, before, "fp32c"), 0u);
#endif
}

TEST(TelemetryRoutes, PerDotElementCounter) {
  const int m = 24, n = 16, k = 8;
  Rng rng(31);
  Matrix<float> a(m, k), b(k, n), c(m, n);
  m3xu::gemm::fill_random(a, rng);
  m3xu::gemm::fill_random(b, rng);
  c.fill(0.0f);
  const M3xuEngine engine;
  const telemetry::Snapshot before = telemetry::snapshot();
  engine.gemm_fp32(m, n, k, a.data(), a.ld(), b.data(), b.ld(), c.data(),
                   c.ld());
  const telemetry::Snapshot after = telemetry::snapshot();
#if M3XU_TELEMETRY_ENABLED
  EXPECT_EQ(after.counter_delta(before, "mxu.fp32.elements.perdot"),
            static_cast<std::uint64_t>(m) * n);
#else
  EXPECT_EQ(after.counter_delta(before, "mxu.fp32.elements.perdot"), 0u);
#endif
}

TEST(TelemetryRoutes, AbftCountersMirrorStats) {
  const int m = 64, n = 64, k = 32;
  Rng rng(5);
  Matrix<float> a(m, k), b(k, n), c(m, n);
  m3xu::gemm::fill_random(a, rng);
  m3xu::gemm::fill_random(b, rng);
  c.fill(0.0f);
  const M3xuEngine engine;
  const m3xu::gemm::TileConfig cfg;
  m3xu::gemm::AbftConfig abft;
  abft.enable = true;
  const telemetry::Snapshot before = telemetry::snapshot();
  const TiledGemmStats stats =
      m3xu::gemm::tiled_sgemm(engine, cfg, abft, a, b, c);
  const telemetry::Snapshot after = telemetry::snapshot();
  ASSERT_GT(stats.abft_tile_checks, 0);
#if M3XU_TELEMETRY_ENABLED
  EXPECT_EQ(after.counter_delta(before, "abft.tile_checks"),
            static_cast<std::uint64_t>(stats.abft_tile_checks));
  EXPECT_EQ(after.counter_delta(before, "abft.detected"),
            static_cast<std::uint64_t>(stats.abft_detected));
  EXPECT_EQ(after.counter_delta(before, "abft.recomputed"),
            static_cast<std::uint64_t>(stats.abft_recomputed));
#else
  EXPECT_EQ(after.counter_delta(before, "abft.tile_checks"), 0u);
#endif
}
