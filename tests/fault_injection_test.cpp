// Tests for the fault-injection framework and the ABFT guard: injector
// determinism, the detect-or-below-tolerance property for single-bit
// flips, the detect/recompute recovery protocol, and the campaign
// runner's reproducibility.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "fault/campaign.hpp"
#include "fault/injector.hpp"
#include "fp/unpacked.hpp"
#include "gemm/matrix.hpp"
#include "gemm/reference.hpp"
#include "gemm/tiled_driver.hpp"

namespace m3xu::fault {
namespace {

TEST(FaultInjector, ZeroRateNeverInjects) {
  const FaultInjector inj(123, SiteRates{});
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_EQ(inj.corrupt(Site::kOperandA, 0xabcull, 12), 0xabcull);
  }
  EXPECT_EQ(inj.total_injected(), 0u);
  EXPECT_EQ(inj.opportunities(Site::kOperandA), 10'000u);
}

TEST(FaultInjector, RateOneAlwaysFlipsExactlyOneBit) {
  const FaultInjector inj(7, SiteRates::uniform(1.0));
  for (int i = 0; i < 1'000; ++i) {
    const std::uint64_t out = inj.corrupt(Site::kPartialProduct, 0xfffull, 24);
    const std::uint64_t diff = out ^ 0xfffull;
    EXPECT_NE(diff, 0u);
    EXPECT_EQ(diff & (diff - 1), 0u);  // exactly one bit
    EXPECT_LT(highest_bit(diff), 24);
  }
  EXPECT_EQ(inj.injected(Site::kPartialProduct), 1'000u);
}

TEST(FaultInjector, SameSeedReplaysIdenticalFaults) {
  const SiteRates rates = SiteRates::uniform(0.01);
  const FaultInjector a(42, rates), b(42, rates);
  for (int i = 0; i < 50'000; ++i) {
    const Site site = static_cast<Site>(i % kSiteCount);
    EXPECT_EQ(a.corrupt(site, 0x5a5a5ull, 24), b.corrupt(site, 0x5a5a5ull, 24));
  }
  EXPECT_GT(a.total_injected(), 0u);
  EXPECT_EQ(a.log(), b.log());
}

TEST(FaultInjector, SeedsDecorrelate) {
  const SiteRates rates = SiteRates::uniform(0.01);
  const FaultInjector a(1, rates), b(2, rates);
  for (int i = 0; i < 50'000; ++i) {
    a.corrupt(Site::kOperandB, 0x7ffull, 12);
    b.corrupt(Site::kOperandB, 0x7ffull, 12);
  }
  EXPECT_GT(a.total_injected(), 0u);
  EXPECT_GT(b.total_injected(), 0u);
  EXPECT_NE(a.log(), b.log());
}

TEST(FaultInjector, CorruptUnpackedStaysNormalizedOrZero) {
  const FaultInjector inj(99, SiteRates::uniform(1.0));
  Rng rng(1234);
  for (int i = 0; i < 10'000; ++i) {
    const fp::Unpacked in = fp::unpack(rng.scaled_float());
    if (in.cls != fp::FpClass::kNormal) continue;
    const fp::Unpacked out = inj.corrupt_unpacked(Site::kAccumulator, in, 48);
    if (out.cls == fp::FpClass::kZero) continue;
    ASSERT_EQ(out.cls, fp::FpClass::kNormal);
    // Normalized: the leading significand bit sits at kSigTop.
    EXPECT_EQ(highest_bit(out.sig), fp::Unpacked::kSigTop);
  }
}

TEST(FaultInjector, SpecialsPassThroughButConsumeOpportunity) {
  const FaultInjector inj(5, SiteRates::uniform(1.0));
  fp::Unpacked inf;
  inf.cls = fp::FpClass::kInf;
  const fp::Unpacked out = inj.corrupt_unpacked(Site::kAccumulator, inf, 48);
  EXPECT_EQ(out.cls, fp::FpClass::kInf);
  EXPECT_EQ(inj.opportunities(Site::kAccumulator), 1u);
  EXPECT_EQ(inj.injected(Site::kAccumulator), 0u);
}

// --- ABFT property tests ---------------------------------------------

struct Problem {
  gemm::Matrix<float> a, b, c;
};

Problem make(int m, int n, int k, std::uint64_t seed) {
  Problem p{gemm::Matrix<float>(m, k), gemm::Matrix<float>(k, n),
            gemm::Matrix<float>(m, n)};
  Rng rng(seed);
  fill_random(p.a, rng);
  fill_random(p.b, rng);
  fill_random(p.c, rng);
  return p;
}

// Every injected single-bit flip is either detected by the ABFT guard
// or its effect on every output element stays below twice the mode's
// column tolerance (i.e. provably inside the legitimate rounding band).
// Swept across all four sites.
TEST(AbftProperty, FlipDetectedOrBelowTolerance) {
  constexpr int m = 32, n = 32, k = 64;
  const gemm::TileConfig tile{32, 32, 32, 16, 16};
  const gemm::AbftConfig abft{true, 1.0, 2};
  const core::M3xuEngine clean;
  int injected_trials = 0, detected_trials = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const Problem p = make(m, n, k, 9000 + trial);
    gemm::Matrix<float> ref = p.c;
    gemm::tiled_sgemm(clean, tile, p.a, p.b, ref);
    const Site site = static_cast<Site>(trial % kSiteCount);
    const std::uint64_t seed = 777 + trial;
    // Low rate: typically a handful of flips per run (a 32x32x64 run
    // offers a few hundred thousand operand opportunities).
    const SiteRates rates = SiteRates::only(site, 3e-5);

    const FaultInjector raw_inj(seed, rates);
    core::M3xuConfig cfg;
    cfg.injector = &raw_inj;
    const core::M3xuEngine faulty(cfg);
    gemm::Matrix<float> raw = p.c;
    gemm::tiled_sgemm(faulty, tile, p.a, p.b, raw);
    if (raw_inj.total_injected() == 0) continue;
    ++injected_trials;

    const FaultInjector guard_inj(seed, rates);
    core::M3xuConfig gcfg;
    gcfg.injector = &guard_inj;
    const core::M3xuEngine guarded(gcfg);
    gemm::Matrix<float> fixed = p.c;
    const gemm::TiledGemmStats stats =
        gemm::tiled_sgemm(guarded, tile, abft, p.a, p.b, fixed);
    // The guarded pass replays the identical flips.
    EXPECT_EQ(guard_inj.log(), raw_inj.log());
    detected_trials += stats.abft_detected > 0 ? 1 : 0;

    for (int j = 0; j < n; ++j) {
      const double tol = gemm::abft_column_tolerance(clean, tile, abft, p.a,
                                                     p.b, p.c, 0, m, j);
      for (int i = 0; i < m; ++i) {
        const double dev = std::fabs(static_cast<double>(raw(i, j)) -
                                     static_cast<double>(ref(i, j)));
        if (dev > 2.0 * tol) {
          // Guaranteed-detectable deviation: the guard must have seen it.
          ASSERT_GT(stats.abft_detected, 0)
              << "escaped SDC at (" << i << "," << j << "), trial " << trial;
          // And the recompute must restore the fault-free result.
          ASSERT_EQ(bits_of(fixed(i, j)), bits_of(ref(i, j)));
        }
      }
    }
    if (stats.abft_detected > 0) {
      // A detected tile is recomputed fault-free: full bitwise match.
      for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; ++j) {
          ASSERT_EQ(bits_of(fixed(i, j)), bits_of(ref(i, j)));
        }
      }
    }
  }
  // The sweep must actually exercise the machinery.
  EXPECT_GT(injected_trials, 10);
  EXPECT_GT(detected_trials, 0);
}

TEST(Abft, RecoversFromHeavyInjection) {
  const Problem p = make(48, 48, 96, 3111);
  const gemm::TileConfig tile{48, 48, 32, 16, 16};
  const core::M3xuEngine clean;
  gemm::Matrix<float> ref = p.c;
  gemm::tiled_sgemm(clean, tile, p.a, p.b, ref);

  const FaultInjector inj(21, SiteRates::uniform(1e-4));
  core::M3xuConfig cfg;
  cfg.injector = &inj;
  const core::M3xuEngine faulty(cfg);
  gemm::Matrix<float> c = p.c;
  const gemm::TiledGemmStats stats =
      gemm::tiled_sgemm(faulty, tile, gemm::AbftConfig{true, 1.0, 2}, p.a,
                        p.b, c);
  ASSERT_GT(inj.total_injected(), 0u);
  ASSERT_GT(stats.abft_detected, 0);
  EXPECT_EQ(stats.abft_recovered, stats.abft_detected);
  for (int i = 0; i < 48; ++i) {
    for (int j = 0; j < 48; ++j) {
      ASSERT_EQ(bits_of(c(i, j)), bits_of(ref(i, j))) << i << "," << j;
    }
  }
}

TEST(Abft, ZeroToleranceWithFaultsExhaustsRetries) {
  // tolerance_scale = 0 makes even legitimate rounding trip the check;
  // with live injection and a single recompute the driver cannot settle
  // and must surface the structured error (not abort).
  const Problem p = make(32, 32, 32, 3222);
  const gemm::TileConfig tile{32, 32, 32, 16, 16};
  const FaultInjector inj(3, SiteRates::only(Site::kOperandA, 1.0));
  core::M3xuConfig cfg;
  cfg.injector = &inj;
  const core::M3xuEngine faulty(cfg);
  gemm::Matrix<float> c = p.c;
  EXPECT_THROW(gemm::tiled_sgemm(faulty, tile, gemm::AbftConfig{true, 0.0, 1},
                                 p.a, p.b, c),
               gemm::AbftFailure);
}

TEST(Abft, ZeroToleranceCleanEngineIsFalseAlarm) {
  // With a fault-free engine the recompute reproduces the same bits,
  // which the driver classifies as a tolerance artifact and accepts.
  const Problem p = make(32, 32, 32, 3333);
  const gemm::TileConfig tile{32, 32, 32, 16, 16};
  const core::M3xuEngine clean;
  gemm::Matrix<float> ref = p.c;
  gemm::tiled_sgemm(clean, tile, p.a, p.b, ref);
  gemm::Matrix<float> c = p.c;
  const gemm::TiledGemmStats stats = gemm::tiled_sgemm(
      clean, tile, gemm::AbftConfig{true, 0.0, 2}, p.a, p.b, c);
  EXPECT_GT(stats.abft_detected, 0);
  EXPECT_GT(stats.abft_false_alarms, 0);
  EXPECT_EQ(stats.abft_recovered, 0);
  for (int i = 0; i < 32; ++i) {
    for (int j = 0; j < 32; ++j) {
      ASSERT_EQ(bits_of(c(i, j)), bits_of(ref(i, j)));
    }
  }
}

// --- Campaign runner --------------------------------------------------

CampaignConfig small_campaign() {
  CampaignConfig config;
  config.m = config.n = 16;
  config.k = 32;
  config.tile = gemm::TileConfig{16, 16, 16, 16, 16};
  config.trials = 4;
  config.sites = {Site::kOperandA, Site::kAccumulator};
  config.rates = {1e-4};
  return config;
}

TEST(Campaign, SameSeedIsBitReproducible) {
  const CampaignResult r1 = run_campaign(small_campaign());
  const CampaignResult r2 = run_campaign(small_campaign());
  ASSERT_EQ(r1.cells.size(), r2.cells.size());
  for (std::size_t i = 0; i < r1.cells.size(); ++i) {
    EXPECT_EQ(r1.cells[i].site, r2.cells[i].site);
    EXPECT_EQ(r1.cells[i].faults_injected, r2.cells[i].faults_injected);
    EXPECT_EQ(r1.cells[i].perturbed, r2.cells[i].perturbed);
    EXPECT_EQ(r1.cells[i].corrupting, r2.cells[i].corrupting);
    EXPECT_EQ(r1.cells[i].detected, r2.cells[i].detected);
    EXPECT_EQ(r1.cells[i].corrected, r2.cells[i].corrected);
    EXPECT_EQ(r1.cells[i].escaped_sdc, r2.cells[i].escaped_sdc);
  }
  EXPECT_EQ(to_json(r1), to_json(r2));
}

TEST(Campaign, NoEscapedSdcAndCoherentCounts) {
  CampaignConfig config = small_campaign();
  config.trials = 8;
  const CampaignResult r = run_campaign(config);
  ASSERT_EQ(r.cells.size(), 2u);
  for (const CampaignCell& cell : r.cells) {
    EXPECT_EQ(cell.trials, 8);
    EXPECT_GE(cell.perturbed, cell.corrupting);
    EXPECT_LE(cell.escaped_sdc, cell.corrupting);
    EXPECT_LE(cell.corrected, cell.detected);
    EXPECT_EQ(cell.escaped_sdc, 0) << site_name(cell.site);
    EXPECT_EQ(cell.corrected, cell.detected) << site_name(cell.site);
  }
  EXPECT_DOUBLE_EQ(r.overall_detection_rate(), 1.0);
}

TEST(Campaign, RejectsMultiTileGeometry) {
  CampaignConfig config = small_campaign();
  config.m = 64;  // > tile.block_m: fault replay would depend on
                  // scheduling order
  const ScopedCheckHandler guard(&throwing_check_failure_handler);
  EXPECT_THROW(run_campaign(config), CheckError);
}

}  // namespace
}  // namespace m3xu::fault
