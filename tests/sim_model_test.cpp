// Unit tests for the cycle-level SM model: pipe throughput, memory
// latency/bandwidth, cp.async group dependencies, and barriers.
#include <gtest/gtest.h>

#include "sim/gpu_config.hpp"
#include "sim/instruction.hpp"
#include "sim/sm_model.hpp"

namespace m3xu::sim {
namespace {

GpuConfig cfg() { return GpuConfig::a100(); }

TEST(SmModel, EmptyProgramFinishesImmediately) {
  CtaProgram p;
  p.warps = 1;
  p.iterations = 0;
  const SmResult r = simulate_sm(cfg(), p, 1, 0.0, 108, 0);
  EXPECT_LT(r.cycles, 4.0);
}

TEST(SmModel, FfmaThroughputMatchesPipeWidth) {
  // One warp issuing 1000 FFMAs: the FP32 quadrant (16 lanes) retires
  // one warp instruction every 2 cycles.
  CtaProgram p;
  p.warps = 1;
  p.iterations = 1;
  for (int i = 0; i < 10; ++i) p.body.push_back(Instr::ffma(100));
  const SmResult r = simulate_sm(cfg(), p, 1, 0.0, 108, 1);
  EXPECT_NEAR(r.cycles, 2000.0, 60.0);
  EXPECT_EQ(r.ffma_count, 1000);
}

TEST(SmModel, FourWarpsSaturateFourQuadrants) {
  // Four warps land on four schedulers: 4x the FFMA throughput.
  CtaProgram p;
  p.warps = 4;
  p.iterations = 1;
  for (int i = 0; i < 10; ++i) p.body.push_back(Instr::ffma(100));
  const SmResult r = simulate_sm(cfg(), p, 1, 0.0, 108, 1);
  EXPECT_NEAR(r.cycles, 2000.0, 60.0);  // same wall time, 4x work
  EXPECT_EQ(r.ffma_count, 4000);
}

TEST(SmModel, MmaOccupiesTensorPipe) {
  // 100 MMAs of II 8 from one warp: ~800 cycles on its tensor core.
  CtaProgram p;
  p.warps = 1;
  p.iterations = 1;
  for (int i = 0; i < 100; ++i) p.body.push_back(Instr::mma(8));
  const SmResult r = simulate_sm(cfg(), p, 1, 0.0, 108, 1);
  EXPECT_NEAR(r.cycles, 800.0, 80.0);
  EXPECT_EQ(r.mma_count, 100);
  EXPECT_NEAR(r.tc_busy_cycles, 800.0, 1.0);
}

TEST(SmModel, TwoStepMmaDoublesTensorTime) {
  CtaProgram p1, p2;
  p1.warps = p2.warps = 1;
  p1.iterations = p2.iterations = 1;
  for (int i = 0; i < 100; ++i) p1.body.push_back(Instr::mma(8));
  for (int i = 0; i < 100; ++i) p2.body.push_back(Instr::mma(16));
  const double c1 = simulate_sm(cfg(), p1, 1, 0.0, 108, 1).cycles;
  const double c2 = simulate_sm(cfg(), p2, 1, 0.0, 108, 1).cycles;
  EXPECT_NEAR(c2 / c1, 2.0, 0.1);
}

TEST(SmModel, LoadLatencyIsVisibleToDependents) {
  // ldg -> wait -> done: at least the DRAM latency.
  CtaProgram p;
  p.warps = 1;
  p.iterations = 1;
  p.body.push_back(Instr::ldg(128.0, 0));
  p.body.push_back(Instr::wait_group(0));
  const GpuConfig c = cfg();
  const SmResult r = simulate_sm(c, p, 1, 0.0, 108, 1);
  EXPECT_GE(r.cycles, c.dram_latency_cycles);
  EXPECT_LT(r.cycles, c.dram_latency_cycles + c.l2_latency_cycles + 100);
}

TEST(SmModel, L2HitsSkipDramLatency) {
  CtaProgram p;
  p.warps = 1;
  p.iterations = 1;
  p.body.push_back(Instr::ldg(128.0, 0));
  p.body.push_back(Instr::wait_group(0));
  const GpuConfig c = cfg();
  const double miss = simulate_sm(c, p, 1, 0.0, 108, 1).cycles;
  const double hit = simulate_sm(c, p, 1, 1.0, 108, 1).cycles;
  EXPECT_LT(hit, miss);
  EXPECT_GE(hit, c.l2_latency_cycles);
}

TEST(SmModel, DramBandwidthSharedAcrossSms) {
  // Streaming a large block: fewer active SMs means a bigger share and
  // a faster drain.
  CtaProgram p;
  p.warps = 8;
  p.iterations = 1;
  p.body.push_back(Instr::ldg(1 << 18, 0));  // 256 KiB per warp
  p.body.push_back(Instr::wait_group(0));
  const double all_sms = simulate_sm(cfg(), p, 1, 0.0, 108, 1).cycles;
  const double one_sm = simulate_sm(cfg(), p, 1, 0.0, 1, 1).cycles;
  // A lone SM still can't use the whole DRAM: its L2 port bandwidth
  // (40 B/cycle) becomes the limit, so the gain saturates around 4x.
  EXPECT_GT(all_sms, one_sm * 3.0);
}

TEST(SmModel, BarrierSynchronizesWarps) {
  // Warp 0 has heavy pre-barrier work; all warps' post-barrier work
  // starts after it, so total >= warp0 work + post work.
  CtaProgram p;
  p.warps = 4;
  p.iterations = 1;
  p.body.push_back(Instr::ffma(200));  // 400 cycles on each quadrant
  p.body.push_back(Instr::bar());
  p.body.push_back(Instr::ffma(100));
  const SmResult r = simulate_sm(cfg(), p, 1, 0.0, 108, 1);
  EXPECT_GE(r.cycles, 400.0 + 200.0);
  EXPECT_LT(r.cycles, 900.0);
}

TEST(SmModel, CpAsyncPrefetchOverlapsCompute) {
  // A well-pipelined loop: loads for iteration i+2 issue while i
  // computes; steady state is compute-bound, not latency-bound.
  const GpuConfig c = cfg();
  CtaProgram p;
  p.warps = 4;
  p.iterations = 40;
  p.prologue.push_back(Instr::ldg(512.0, 0));
  p.prologue.push_back(Instr::ldg(512.0, 1));
  p.body.push_back(Instr::ldg(512.0, 2));
  p.body.push_back(Instr::wait_group(0));
  p.body.push_back(Instr::bar());
  // 100 MMA x 8 cycles = 800 cycles/iteration: a 2-deep prefetch
  // (1600-cycle lookahead) fully hides the ~650-cycle load latency.
  for (int i = 0; i < 100; ++i) p.body.push_back(Instr::mma(8));
  const SmResult r = simulate_sm(c, p, 1, 0.0, 108, 40);
  EXPECT_NEAR(r.cycles, 100.0 * 8 * 40, 1600.0);
}

TEST(SmModel, StatsAreDividedPerCta) {
  CtaProgram p;
  p.warps = 2;
  p.iterations = 1;
  p.body.push_back(Instr::ldg(100.0, 0));
  p.body.push_back(Instr::ffma(10));
  const SmResult one = simulate_sm(cfg(), p, 1, 0.0, 108, 1);
  const SmResult two = simulate_sm(cfg(), p, 2, 0.0, 108, 1);
  EXPECT_EQ(one.ffma_count, two.ffma_count);
  EXPECT_DOUBLE_EQ(one.ldg_bytes, two.ldg_bytes);
}

TEST(SmModel, MoreResidentCtasShareThePipes) {
  CtaProgram p;
  p.warps = 4;
  p.iterations = 1;
  for (int i = 0; i < 50; ++i) p.body.push_back(Instr::mma(8));
  const double c1 = simulate_sm(cfg(), p, 1, 0.0, 108, 1).cycles;
  const double c2 = simulate_sm(cfg(), p, 2, 0.0, 108, 1).cycles;
  EXPECT_NEAR(c2 / c1, 2.0, 0.2);
}

TEST(SmModel, SharedMemoryBandwidthBindsLdsHeavyPrograms) {
  // 128 B/cycle of smem: a warp pulling 1 MiB through LDS needs at
  // least 8192 cycles no matter how idle the math pipes are.
  CtaProgram p;
  p.warps = 1;
  p.iterations = 1;
  for (int i = 0; i < 64; ++i) p.body.push_back(Instr::lds(16384.0));
  const SmResult r = simulate_sm(cfg(), p, 1, 0.0, 108, 1);
  EXPECT_GE(r.cycles, 64.0 * 16384.0 / cfg().smem_bytes_per_sm_cycle);
  EXPECT_LT(r.cycles, 64.0 * 16384.0 / cfg().smem_bytes_per_sm_cycle * 1.2);
  EXPECT_DOUBLE_EQ(r.smem_bytes, 64.0 * 16384.0);
}

TEST(SmModel, AluPipeHasUnitInitiationInterval) {
  CtaProgram p;
  p.warps = 1;
  p.iterations = 1;
  for (int i = 0; i < 10; ++i) p.body.push_back(Instr::alu(100));
  const SmResult r = simulate_sm(cfg(), p, 1, 0.0, 108, 1);
  EXPECT_NEAR(r.cycles, 1000.0, 40.0);
  EXPECT_EQ(r.alu_count, 1000);
}

TEST(SmModel, DeeperPrefetchHidesMoreLatency) {
  // Same work, prefetch depth 1 vs 3: the deeper pipeline is faster
  // when per-iteration compute is short relative to load latency.
  auto build = [](int stages) {
    CtaProgram p;
    p.warps = 4;
    p.iterations = 30;
    for (int s = 0; s < stages - 1; ++s) {
      p.prologue.push_back(Instr::ldg(256.0, s));
    }
    p.body.push_back(Instr::ldg(256.0, stages - 1));
    p.body.push_back(Instr::wait_group(0));
    p.body.push_back(Instr::bar());
    for (int i = 0; i < 20; ++i) p.body.push_back(Instr::mma(8));
    return p;
  };
  const double shallow = simulate_sm(cfg(), build(2), 1, 0.0, 108, 30).cycles;
  const double deep = simulate_sm(cfg(), build(4), 1, 0.0, 108, 30).cycles;
  EXPECT_LT(deep, shallow * 0.8);
}

TEST(SmModel, BarriersAreCtaLocal) {
  // Two resident CTAs: each synchronizes internally, neither waits on
  // the other. If barriers leaked across CTAs the staggered loads
  // would serialize and blow past the single-CTA bound.
  CtaProgram p;
  p.warps = 2;
  p.iterations = 4;
  p.body.push_back(Instr::ldg(512.0, 2));
  p.body.push_back(Instr::wait_group(0));
  p.body.push_back(Instr::bar());
  for (int i = 0; i < 50; ++i) p.body.push_back(Instr::mma(8));
  p.prologue.push_back(Instr::ldg(512.0, 0));
  p.prologue.push_back(Instr::ldg(512.0, 1));
  const double one = simulate_sm(cfg(), p, 1, 0.0, 108, 4).cycles;
  const double two = simulate_sm(cfg(), p, 2, 0.0, 108, 4).cycles;
  // Two CTAs (4 warps on 4 schedulers/TCs) should overlap almost
  // perfectly, not serialize to 2x.
  EXPECT_LT(two, one * 1.5);
}

TEST(SmModel, LsuSerializesIssueNotCompletion) {
  // Many small non-blocking loads issue back to back (II=1) and their
  // latencies overlap: total time is ~latency + issue count, far below
  // count x latency.
  const GpuConfig c = cfg();
  CtaProgram p;
  p.warps = 1;
  p.iterations = 1;
  for (int i = 0; i < 32; ++i) p.body.push_back(Instr::ldg(32.0, 0));
  p.body.push_back(Instr::wait_group(0));
  const SmResult r = simulate_sm(c, p, 1, 0.0, 108, 1);
  EXPECT_LT(r.cycles, c.dram_latency_cycles + c.l2_latency_cycles + 200.0);
}

TEST(SmModel, CycleCapFlagsRunawayPrograms) {
  // A single warp grinding an enormous serial ALU chain trips the cap
  // instead of hanging.
  CtaProgram p;
  p.warps = 1;
  p.iterations = 1;
  Instr big = Instr::alu(1 << 30);
  p.body.push_back(big);
  Instr dep = Instr::alu(1 << 30);
  dep.dep_on_prev = true;
  p.body.push_back(dep);
  const SmResult r = simulate_sm(cfg(), p, 1, 0.0, 108, 1);
  EXPECT_TRUE(r.hit_cycle_cap);
}

}  // namespace
}  // namespace m3xu::sim
