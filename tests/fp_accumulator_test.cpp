// Tests for the exact fixed-point accumulator (the idealized dot-
// product adder tree / exact oracle) and the ExtFloat accumulator-
// register model (48-bit M3XU registers, 24-bit FP32 accumulate).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "fp/exact_accumulator.hpp"
#include "fp/ext_float.hpp"

namespace m3xu::fp {
namespace {

TEST(ExactAccumulator, StartsAtZero) {
  ExactAccumulator acc;
  EXPECT_TRUE(acc.is_zero());
  EXPECT_EQ(acc.to_double(), 0.0);
}

TEST(ExactAccumulator, SingleValueRoundTrips) {
  Rng rng(11);
  for (int i = 0; i < 200'000; ++i) {
    const double d = double_from_bits(rng.next_u64());
    if (std::isnan(d)) continue;
    ExactAccumulator acc;
    acc.add_double(d);
    EXPECT_EQ(bits_of(acc.to_double()), bits_of(d)) << d;
  }
}

TEST(ExactAccumulator, ExactCancellation) {
  Rng rng(12);
  for (int i = 0; i < 50'000; ++i) {
    const float a = rng.any_finite_float();
    ExactAccumulator acc;
    acc.add_double(a);
    acc.add_double(-static_cast<double>(a));
    EXPECT_TRUE(acc.is_zero()) << a;
  }
}

TEST(ExactAccumulator, SumOfManySmallAndOneLarge) {
  // 2^60 + 2^-60 * 2^60 times... classic catastrophic case for naive
  // float summation: the exact accumulator must keep every bit.
  ExactAccumulator acc;
  acc.add_double(std::ldexp(1.0, 60));
  const int n = 1 << 12;
  for (int i = 0; i < n; ++i) acc.add_double(std::ldexp(1.0, -40));
  acc.add_double(-std::ldexp(1.0, 60));
  EXPECT_EQ(acc.to_double(), std::ldexp(1.0, -40) * n);
}

TEST(ExactAccumulator, ProductsAreExact) {
  // double(a) * double(b) is exact for FP32 a,b (24+24 <= 53 bits), so
  // the accumulator's product must match the host exactly.
  Rng rng(13);
  for (int i = 0; i < 500'000; ++i) {
    const float a = rng.any_finite_float();
    const float b = rng.any_finite_float();
    ExactAccumulator acc;
    acc.add_product(unpack(a), unpack(b));
    const double expected = static_cast<double>(a) * static_cast<double>(b);
    EXPECT_EQ(bits_of(acc.to_double()), bits_of(expected)) << a << " * " << b;
  }
}

TEST(ExactAccumulator, DotProductMatchesQuadForBenignRange) {
  Rng rng(14);
  for (int trial = 0; trial < 2'000; ++trial) {
    ExactAccumulator acc;
    __float128 ref = 0;
    for (int k = 0; k < 64; ++k) {
      const float a = rng.scaled_float();
      const float b = rng.scaled_float();
      acc.add_product(unpack(a), unpack(b));
      ref += static_cast<__float128>(a) * b;
    }
    // __float128 has a 113-bit significand; in this benign exponent
    // range a 64-term sum of 48-bit products is exact there.
    EXPECT_EQ(acc.to_double(), static_cast<double>(ref));
  }
}

TEST(ExactAccumulator, InfAndNanSemantics) {
  const double inf = std::numeric_limits<double>::infinity();
  {
    ExactAccumulator acc;
    acc.add_double(inf);
    acc.add_double(1.0);
    EXPECT_TRUE(std::isinf(acc.to_double()));
    EXPECT_GT(acc.to_double(), 0.0);
  }
  {
    ExactAccumulator acc;
    acc.add_double(inf);
    acc.add_double(-inf);
    EXPECT_TRUE(std::isnan(acc.to_double()));
  }
  {
    ExactAccumulator acc;  // Inf * 0 -> NaN
    acc.add_product(unpack(inf), unpack(0.0));
    EXPECT_TRUE(std::isnan(acc.to_double()));
  }
  {
    ExactAccumulator acc;  // Inf * finite -> signed Inf
    acc.add_product(unpack(-inf), unpack(2.0f));
    EXPECT_TRUE(std::isinf(acc.to_double()));
    EXPECT_LT(acc.to_double(), 0.0);
  }
  {
    ExactAccumulator acc;
    acc.add_double(std::numeric_limits<double>::quiet_NaN());
    EXPECT_TRUE(std::isnan(acc.to_double()));
  }
}

TEST(ExactAccumulator, RoundToFloatMatchesHostNarrowing) {
  Rng rng(15);
  for (int i = 0; i < 500'000; ++i) {
    const double d = double_from_bits(rng.next_u64());
    if (std::isnan(d)) continue;
    ExactAccumulator acc;
    acc.add_double(d);
    EXPECT_EQ(bits_of(acc.to_float()), bits_of(static_cast<float>(d))) << d;
  }
}

TEST(ExactAccumulator, RoundToPrecisionTies) {
  // 1 + 2^-24 is exactly halfway between FP32 neighbours 1 and 1+2^-23:
  // RNE at 24 bits picks the even one (1.0).
  {
    ExactAccumulator acc;
    acc.add_double(1.0);
    acc.add_double(std::ldexp(1.0, -24));
    EXPECT_EQ(acc.to_float(), 1.0f);
  }
  // Adding any dust below the tie must round up instead.
  {
    ExactAccumulator acc;
    acc.add_double(1.0);
    acc.add_double(std::ldexp(1.0, -24));
    acc.add_double(std::ldexp(1.0, -80));
    EXPECT_EQ(acc.to_float(), 1.0f + std::ldexp(1.0f, -23));
  }
  // 1 + 3*2^-25: above the halfway point -> rounds up.
  {
    ExactAccumulator acc;
    acc.add_double(1.0);
    acc.add_double(3 * std::ldexp(1.0, -25));
    EXPECT_EQ(acc.to_float(), 1.0f + std::ldexp(1.0f, -23));
  }
}

TEST(ExactAccumulator, NegativeSumsRoundCorrectly) {
  Rng rng(16);
  for (int i = 0; i < 100'000; ++i) {
    const double d = -std::fabs(double_from_bits(rng.next_u64()));
    if (std::isnan(d) || d == 0.0) continue;
    ExactAccumulator acc;
    acc.add_double(d);
    EXPECT_EQ(bits_of(acc.to_double()), bits_of(d));
    EXPECT_TRUE(acc.is_negative());
  }
}

TEST(ExtFloat, RoundTripAtFloatPrecision) {
  Rng rng(17);
  for (int i = 0; i < 200'000; ++i) {
    const float f = rng.any_finite_float();
    EXPECT_EQ(bits_of(ExtFloat::from_float(f, 24).to_float()), bits_of(f));
  }
}

TEST(ExtFloat, Prec24AdditionMatchesHostFloat) {
  // A 24-bit ExtFloat accumulator must reproduce host float addition
  // bit-for-bit in the normal range (it has no exponent clamp, so avoid
  // overflow/underflow in the inputs).
  Rng rng(18);
  for (int trial = 0; trial < 5'000; ++trial) {
    ExtFloat acc(24);
    float host = 0.0f;
    for (int k = 0; k < 32; ++k) {
      const float v = rng.scaled_float();
      acc = acc.plus(unpack(v));
      host += v;
    }
    EXPECT_EQ(bits_of(acc.to_float()), bits_of(host));
  }
}

TEST(ExtFloat, WiderAccumulatorIsMoreAccurate) {
  // Summing many same-sign values: the 48-bit register (M3XU) must be
  // at least as accurate as the 24-bit one against the exact sum, and
  // strictly better on average.
  Rng rng(19);
  double err24_total = 0.0;
  double err48_total = 0.0;
  for (int trial = 0; trial < 200; ++trial) {
    ExtFloat a24(24);
    ExtFloat a48(48);
    ExactAccumulator exact;
    for (int k = 0; k < 4096; ++k) {
      const float v = std::fabs(rng.scaled_float());
      a24 = a24.plus(unpack(v));
      a48 = a48.plus(unpack(v));
      exact.add_double(v);
    }
    const double ref = exact.to_double();
    err24_total += std::fabs(a24.to_double() - ref) / ref;
    err48_total += std::fabs(a48.to_double() - ref) / ref;
  }
  EXPECT_LT(err48_total, err24_total * 1e-3);
}

TEST(ExtFloat, PlusExactMatchesSeparateRounding) {
  // plus_exact(acc_sum) == round(value + exact_sum): spot-check against
  // composing through doubles when everything is exactly representable.
  ExtFloat acc = ExtFloat::from_double(3.0, 48);
  ExactAccumulator step;
  step.add_double(0.25);
  step.add_double(0.125);
  acc = acc.plus_exact(step);
  EXPECT_EQ(acc.to_double(), 3.375);
}

TEST(RoundUnpackedToPrecision, CarryOutRenormalizes) {
  // 1.111...1 (25 ones) rounds at 24 bits to 10.00...0 -> exponent +1.
  Unpacked u = unpack(1.0);
  u.sig = low_mask(25) << (Unpacked::kSigTop - 24);
  u.exp = 0;
  const Unpacked r = round_unpacked_to_precision(u, 24);
  EXPECT_EQ(r.exp, 1);
  EXPECT_EQ(r.sig, std::uint64_t{1} << Unpacked::kSigTop);
}

}  // namespace
}  // namespace m3xu::fp
