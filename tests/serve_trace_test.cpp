// Acceptance tests for request-scoped tracing in the serving stack:
// under injected faults, every degraded/recovered/failed request must
// carry a single per-request event timeline linking admission -> ABFT
// detection -> retry/demotion rung -> final outcome, in causal order.
// Also covers: tracing disabled (trace_requests=false), shed/evicted
// timelines, request-id uniqueness across concurrent requests, and
// the JSON export of a served request. Concurrency-sensitive
// (tsan-labeled).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "gemm/matrix.hpp"
#include "serve/server.hpp"
#include "telemetry/json.hpp"
#include "telemetry/trace_context.hpp"

namespace m3xu::serve {
namespace {

using gemm::Matrix;

struct Problem {
  Matrix<float> a, b, c;
};

Problem make(int m, int n, int k, std::uint64_t seed) {
  Problem p{Matrix<float>(m, k), Matrix<float>(k, n), Matrix<float>(m, n)};
  Rng rng(seed);
  fill_random(p.a, rng);
  fill_random(p.b, rng);
  fill_random(p.c, rng);
  return p;
}

ServerConfig base_config() {
  ServerConfig cfg;
  cfg.executors = 2;
  cfg.tile = gemm::TileConfig{32, 32, 32, 16, 16};
  cfg.abft.enable = true;
  return cfg;
}

/// seq of the first event with `name`, or -1 when absent. seq is the
/// context's append order, i.e. the causal order of the timeline.
long first_seq(const std::vector<telemetry::TraceEvent>& events,
               const std::string& name) {
  for (const telemetry::TraceEvent& e : events) {
    if (name == e.name) return static_cast<long>(e.seq);
  }
  return -1;
}

long count_events(const std::vector<telemetry::TraceEvent>& events,
                  const std::string& name) {
  long n = 0;
  for (const telemetry::TraceEvent& e : events) {
    if (name == e.name) ++n;
  }
  return n;
}

}  // namespace

#if M3XU_TELEMETRY_ENABLED

// The acceptance path: persistent injected faults with a floored
// ladder and a degrade terminal. The request resolves kDegraded and
// its timeline must link admission -> ABFT detection -> the demotion
// walk -> the terminal outcome, causally ordered.
TEST(ServeTrace, DegradedRequestTimelineIsCausallyComplete) {
  ServerConfig cfg = base_config();
  const fault::FaultInjector inj(
      11, fault::SiteRates::only(fault::Site::kAccumulator, 1.0));
  cfg.engine.injector = &inj;
  cfg.recovery.floor = gemm::Route::kMicrokernel;
  cfg.recovery.terminal = gemm::RecoveryPolicy::Terminal::kDegrade;
  GemmServer server(cfg);
  const Problem p = make(32, 32, 64, 11);
  const RequestHandle req = server.submit_sgemm(p.a, p.b, p.c);
  req->wait();
  ASSERT_EQ(req->status(), RequestStatus::kDegraded) << req->error();
  ASSERT_NE(req->trace(), nullptr);

  const std::vector<telemetry::TraceEvent> events = req->trace()->events();
  const long submit = first_seq(events, "request.submit");
  const long admit = first_seq(events, "request.admit");
  const long dequeue = first_seq(events, "request.dequeue");
  const long attempt = first_seq(events, "request.attempt");
  const long plan = first_seq(events, "plan.execute");
  const long exec = first_seq(events, "exec.start");
  const long detect = first_seq(events, "abft.detect");
  const long retry = first_seq(events, "recovery.retry");
  const long degraded = first_seq(events, "recovery.degraded_tile");
  const long done = first_seq(events, "request.done");

  // Presence: every link of the chain is in the single per-request log.
  ASSERT_GE(submit, 0);
  ASSERT_GE(admit, 0);
  ASSERT_GE(dequeue, 0);
  ASSERT_GE(attempt, 0);
  ASSERT_GE(plan, 0);
  ASSERT_GE(exec, 0);
  ASSERT_GE(detect, 0);
  ASSERT_GE(retry, 0);
  ASSERT_GE(degraded, 0);
  ASSERT_GE(done, 0);

  // Causal order: admission precedes execution precedes detection
  // precedes the ladder precedes the terminal.
  EXPECT_LT(submit, admit);
  EXPECT_LT(admit, dequeue);
  EXPECT_LT(dequeue, attempt);
  EXPECT_LT(attempt, plan);
  EXPECT_LT(plan, exec);
  EXPECT_LT(exec, detect);
  EXPECT_LT(detect, retry);
  EXPECT_LT(retry, degraded);
  EXPECT_LT(degraded, done);

  // The terminal event records the final outcome and is last.
  const telemetry::TraceEvent& last = events.back();
  EXPECT_STREQ(last.name, "request.done");
  EXPECT_EQ(last.a0, static_cast<long>(RequestStatus::kDegraded));
  EXPECT_EQ(last.detail, "degraded");

  // The degrade terminal never fired a demotion (the floor IS the top
  // rung), so the walk shows retries at the floor rung only.
  EXPECT_EQ(count_events(events, "recovery.demote"), 0);
  server.shutdown();
}

// Transient faults with the full ladder: the request recovers to kOk
// and the timeline shows detection, the rung walk, and the recovery.
TEST(ServeTrace, RecoveredRequestTimelineShowsLadderWalk) {
  ServerConfig cfg = base_config();
  cfg.tile = gemm::TileConfig{48, 48, 32, 16, 16};
  const fault::FaultInjector inj(
      0x7ace5, fault::SiteRates::only(fault::Site::kAccumulator, 5e-3));
  cfg.engine.injector = &inj;
  cfg.retry_backoff_ms = 0;
  GemmServer server(cfg);

  bool saw_detection = false;
  for (int i = 0; i < 12 && !saw_detection; ++i) {
    const Problem p = make(48, 48, 96, 100 + static_cast<std::uint64_t>(i));
    const RequestHandle req = server.submit_sgemm(p.a, p.b, p.c);
    req->wait();
    ASSERT_TRUE(req->status() == RequestStatus::kOk ||
                req->status() == RequestStatus::kDegraded)
        << req->error();
    ASSERT_NE(req->trace(), nullptr);
    if (req->stats().abft_detected == 0) continue;
    saw_detection = true;

    const std::vector<telemetry::TraceEvent> events = req->trace()->events();
    const long detect = first_seq(events, "abft.detect");
    const long retry = first_seq(events, "recovery.retry");
    const long done = first_seq(events, "request.done");
    ASSERT_GE(detect, 0);
    ASSERT_GE(retry, 0);
    ASSERT_GE(done, 0);
    EXPECT_LT(first_seq(events, "exec.start"), detect);
    EXPECT_LT(detect, retry);
    EXPECT_LT(retry, done);
    // Recovery outcome: either the retry passed on some rung
    // (recovery.recovered) or the deterministic reproduction proved a
    // false alarm - one of the two must be in the log.
    const bool recovered = first_seq(events, "recovery.recovered") >= 0 ||
                           first_seq(events, "abft.false_alarm") >= 0;
    EXPECT_TRUE(recovered);
  }
  EXPECT_TRUE(saw_detection)
      << "no request saw an ABFT detection; raise the fault rate";
  server.shutdown();
}

TEST(ServeTrace, ShedRequestTimelineCarriesTerminalOutcome) {
  ServerConfig cfg = base_config();
  cfg.executors = 1;
  cfg.queue_capacity = 1;
  cfg.admission = AdmissionPolicy::kRejectNew;
  // A stalling engine keeps the executor busy while we overflow the
  // queue deterministically.
  fault::FaultInjector inj(
      7, fault::SiteRates::only(fault::Site::kWorkerStall, 1.0));
  inj.stall_duration_ms = 20;
  cfg.engine.injector = &inj;
  GemmServer server(cfg);
  std::vector<RequestHandle> handles;
  for (int i = 0; i < 8; ++i) {
    const Problem p = make(32, 32, 32, static_cast<std::uint64_t>(i));
    handles.push_back(server.submit_sgemm(p.a, p.b, p.c));
  }
  bool saw_shed = false;
  for (const RequestHandle& req : handles) {
    req->wait();
    if (req->status() != RequestStatus::kShed) continue;
    saw_shed = true;
    ASSERT_NE(req->trace(), nullptr);
    const std::vector<telemetry::TraceEvent> events = req->trace()->events();
    const long submit = first_seq(events, "request.submit");
    const long done = first_seq(events, "request.done");
    ASSERT_GE(submit, 0);
    ASSERT_GE(done, 0);
    EXPECT_LT(submit, done);
    EXPECT_EQ(events.back().a0, static_cast<long>(RequestStatus::kShed));
    // A rejected request never reached the queue: no admit/dequeue.
    EXPECT_EQ(first_seq(events, "request.dequeue"), -1);
  }
  EXPECT_TRUE(saw_shed);
  server.shutdown();
}

TEST(ServeTrace, RequestIdsUniqueAcrossConcurrentRequests) {
  ServerConfig cfg = base_config();
  GemmServer server(cfg);
  std::vector<RequestHandle> handles;
  for (int i = 0; i < 16; ++i) {
    const Problem p = make(32, 32, 32, static_cast<std::uint64_t>(i));
    handles.push_back(server.submit_sgemm(p.a, p.b, p.c));
  }
  std::set<std::uint64_t> request_ids;
  std::set<std::uint64_t> event_ids;
  for (const RequestHandle& req : handles) {
    req->wait();
    ASSERT_NE(req->trace(), nullptr);
    request_ids.insert(req->trace()->request_id());
    for (const telemetry::TraceEvent& e : req->trace()->events()) {
      event_ids.insert(e.id);
    }
  }
  EXPECT_EQ(request_ids.size(), handles.size());
  // Event ids are process-unique across requests and pool threads.
  std::size_t total_events = 0;
  for (const RequestHandle& req : handles) {
    total_events += req->trace()->events().size();
  }
  EXPECT_EQ(event_ids.size(), total_events);
  server.shutdown();
}

TEST(ServeTrace, ExportedTimelineParsesAsJson) {
  ServerConfig cfg = base_config();
  GemmServer server(cfg);
  const Problem p = make(32, 32, 32, 5);
  RequestOptions opts;
  opts.tenant = "tenant-json";
  const RequestHandle req = server.submit_sgemm(p.a, p.b, p.c, opts);
  req->wait();
  ASSERT_EQ(req->status(), RequestStatus::kOk) << req->error();
  ASSERT_NE(req->trace(), nullptr);
  const auto doc = telemetry::JsonValue::parse(req->trace()->to_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("tenant")->as_string(), "tenant-json");
  EXPECT_EQ(doc->find("label")->as_string(), "sgemm.32x32x32");
  const telemetry::JsonValue* events = doc->find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_GE(events->size(), 2u);
  // Events in the export are seq-ordered with nondecreasing seq.
  for (std::size_t i = 1; i < events->size(); ++i) {
    EXPECT_LT(events->at(i - 1).find("seq")->as_uint(),
              events->at(i).find("seq")->as_uint());
  }
  server.shutdown();
}

#endif  // M3XU_TELEMETRY_ENABLED

// trace_requests=false (and the M3XU_TELEMETRY=OFF build, where this
// is the only behavior): requests carry no trace and still serve.
TEST(ServeTrace, TracingDisabledServesUntraced) {
  ServerConfig cfg = base_config();
  cfg.trace_requests = false;
  GemmServer server(cfg);
  const Problem p = make(32, 32, 32, 3);
  const RequestHandle req = server.submit_sgemm(p.a, p.b, p.c);
  req->wait();
  EXPECT_EQ(req->status(), RequestStatus::kOk) << req->error();
#if M3XU_TELEMETRY_ENABLED
  EXPECT_EQ(req->trace(), nullptr);
#endif
  server.shutdown();
}

}  // namespace m3xu::serve
