// Tests for the GEMM-based FFT: functional correctness against the
// reference FFT and analytic DFT identities, plus Fig-6 timing bands.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/rng.hpp"
#include "fft/fft_timing.hpp"
#include "fft/fft_conv.hpp"
#include "fft/gemm_fft.hpp"
#include "fft/poly.hpp"

namespace m3xu::fft {
namespace {

std::vector<std::complex<float>> random_signal(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::complex<float>> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = {rng.uniform(-1.0f, 1.0f), rng.uniform(-1.0f, 1.0f)};
  return x;
}

double max_err_vs_reference(std::vector<std::complex<float>> x,
                            const core::M3xuEngine& engine, int radix) {
  const int n = static_cast<int>(x.size());
  std::vector<std::complex<double>> ref(x.begin(), x.end());
  reference_fft(ref, /*inverse=*/false);
  GemmFft fft(n, radix, &engine);
  fft.forward(x.data());
  double max_err = 0.0;
  double scale = 0.0;
  for (int i = 0; i < n; ++i) {
    max_err = std::max(max_err,
                       std::abs(std::complex<double>(x[i]) - ref[i]));
    scale = std::max(scale, std::abs(ref[i]));
  }
  return max_err / scale;
}

TEST(ReferenceFft, DeltaGivesFlatSpectrum) {
  std::vector<std::complex<double>> x(16, {0.0, 0.0});
  x[0] = {1.0, 0.0};
  reference_fft(x, false);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(ReferenceFft, RoundTrip) {
  Rng rng(91);
  std::vector<std::complex<double>> x(256);
  for (auto& v : x) v = {rng.normal(), rng.normal()};
  const auto orig = x;
  reference_fft(x, false);
  reference_fft(x, true);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(x[i] - orig[i]), 0.0, 1e-10);
  }
}

TEST(ReferenceFft, SingleToneLandsInOneBin) {
  const int n = 64, tone = 5;
  std::vector<std::complex<double>> x(n);
  for (int i = 0; i < n; ++i) {
    const double ang = 2.0 * M_PI * tone * i / n;
    x[i] = {std::cos(ang), std::sin(ang)};
  }
  reference_fft(x, false);
  for (int k = 0; k < n; ++k) {
    EXPECT_NEAR(std::abs(x[k]), k == tone ? n : 0.0, 1e-9) << k;
  }
}

class GemmFftSizes : public ::testing::TestWithParam<int> {};

TEST_P(GemmFftSizes, MatchesReferenceWithinFp32Accuracy) {
  const core::M3xuEngine engine;
  const double rel =
      max_err_vs_reference(random_signal(GetParam(), 92), engine, 16);
  EXPECT_LT(rel, 2e-5) << "n=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sizes, GemmFftSizes,
                         ::testing::Values(2, 4, 16, 64, 128, 256, 1024,
                                           4096),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

class GemmFftRadix : public ::testing::TestWithParam<int> {};

TEST_P(GemmFftRadix, RadixChoiceDoesNotChangeResultMaterially) {
  const core::M3xuEngine engine;
  const double rel =
      max_err_vs_reference(random_signal(512, 93), engine, GetParam());
  EXPECT_LT(rel, 2e-5) << "radix=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Radices, GemmFftRadix, ::testing::Values(2, 4, 8, 16),
                         [](const auto& info) {
                           return "r" + std::to_string(info.param);
                         });

TEST(GemmFft, LinearityProperty) {
  const core::M3xuEngine engine;
  const int n = 256;
  GemmFft fft(n, 16, &engine);
  auto a = random_signal(n, 94);
  auto b = random_signal(n, 95);
  std::vector<std::complex<float>> sum(n);
  for (int i = 0; i < n; ++i) sum[i] = a[i] + b[i];
  fft.forward(a.data());
  fft.forward(b.data());
  fft.forward(sum.data());
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(sum[i] - (a[i] + b[i])), 0.0, 1e-3) << i;
  }
}

TEST(GemmFft, ParsevalEnergyConservation) {
  const core::M3xuEngine engine;
  const int n = 1024;
  auto x = random_signal(n, 96);
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  GemmFft fft(n, 16, &engine);
  fft.forward(x.data());
  double freq_energy = 0.0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / (n * time_energy), 1.0, 1e-4);
}

TEST(GemmFft, OpCensus) {
  const core::M3xuEngine engine;
  const GemmFft fft(4096, 16, &engine);
  EXPECT_EQ(fft.stage_count(), 3);  // 4096 = 16 * 16 * 16
  // Two radix-16 levels at 16*n cmacs plus the base level: 3 * 16 * n.
  EXPECT_DOUBLE_EQ(fft.cgemm_cmacs(), 3.0 * 16.0 * 4096.0);
}

TEST(GemmFft, InverseRoundTrips) {
  const core::M3xuEngine engine;
  const int n = 512;
  GemmFft f(n, 16, &engine);
  auto x = random_signal(n, 97);
  const auto orig = x;
  f.forward(x.data());
  f.inverse(x.data());
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(std::complex<double>(x[i]) -
                         std::complex<double>(orig[i])),
                0.0, 1e-4)
        << i;
  }
}

TEST(GemmFft, InverseOfDeltaSpectrumIsTone) {
  const core::M3xuEngine engine;
  const int n = 256, bin = 17;
  GemmFft f(n, 16, &engine);
  std::vector<std::complex<float>> x(n, {0.0f, 0.0f});
  x[bin] = {static_cast<float>(n), 0.0f};
  f.inverse(x.data());
  for (int i = 0; i < n; ++i) {
    const double ang = 2.0 * M_PI * bin * i / n;
    EXPECT_NEAR(x[i].real(), std::cos(ang), 1e-4);
    EXPECT_NEAR(x[i].imag(), std::sin(ang), 1e-4);
  }
}

TEST(GemmFft2d, MatchesSeparableReference) {
  const core::M3xuEngine engine;
  const int rows = 16, cols = 32;
  GemmFft2d f(rows, cols, 16, &engine);
  Rng rng(98);
  std::vector<std::complex<float>> img(rows * cols);
  for (auto& v : img) {
    v = {rng.uniform(-1.0f, 1.0f), rng.uniform(-1.0f, 1.0f)};
  }
  // Reference: double-precision row FFTs then column FFTs.
  std::vector<std::vector<std::complex<double>>> ref(rows);
  for (int r = 0; r < rows; ++r) {
    ref[r].assign(img.begin() + r * cols, img.begin() + (r + 1) * cols);
    reference_fft(ref[r], false);
  }
  for (int c = 0; c < cols; ++c) {
    std::vector<std::complex<double>> col(rows);
    for (int r = 0; r < rows; ++r) col[r] = ref[r][c];
    reference_fft(col, false);
    for (int r = 0; r < rows; ++r) ref[r][c] = col[r];
  }
  f.forward(img.data());
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      EXPECT_NEAR(std::abs(std::complex<double>(img[r * cols + c]) -
                           ref[r][c]),
                  0.0, 1e-3)
          << r << "," << c;
    }
  }
}

TEST(GemmFft2d, RoundTrip) {
  const core::M3xuEngine engine;
  const int rows = 32, cols = 16;
  GemmFft2d f(rows, cols, 8, &engine);
  Rng rng(99);
  std::vector<std::complex<float>> img(rows * cols);
  for (auto& v : img) {
    v = {rng.uniform(-1.0f, 1.0f), rng.uniform(-1.0f, 1.0f)};
  }
  const auto orig = img;
  f.forward(img.data());
  f.inverse(img.data());
  for (std::size_t i = 0; i < img.size(); ++i) {
    EXPECT_NEAR(std::abs(std::complex<double>(img[i]) -
                         std::complex<double>(orig[i])),
                0.0, 1e-4);
  }
}

TEST(RealFft, MatchesComplexReferenceSpectrum) {
  const core::M3xuEngine engine;
  const int n = 512;
  RealFft rf(n, 16, &engine);
  Rng rng(88);
  std::vector<float> x(n);
  for (auto& v : x) v = rng.uniform(-1.0f, 1.0f);
  std::vector<std::complex<float>> spec(n / 2 + 1);
  rf.forward(x.data(), spec.data());
  std::vector<std::complex<double>> ref(x.begin(), x.end());
  reference_fft(ref, false);
  for (int k = 0; k <= n / 2; ++k) {
    EXPECT_NEAR(std::abs(std::complex<double>(spec[k]) - ref[k]), 0.0, 1e-3)
        << k;
  }
}

TEST(RealFft, DcBinIsSignalSum) {
  const core::M3xuEngine engine;
  const int n = 64;
  RealFft rf(n, 8, &engine);
  std::vector<float> x(n, 0.5f);
  std::vector<std::complex<float>> spec(n / 2 + 1);
  rf.forward(x.data(), spec.data());
  EXPECT_NEAR(spec[0].real(), 32.0, 1e-4);
  EXPECT_NEAR(spec[0].imag(), 0.0, 1e-4);
  for (int k = 1; k <= n / 2; ++k) {
    EXPECT_NEAR(std::abs(std::complex<double>(spec[k])), 0.0, 1e-4);
  }
}

TEST(RealFft, NyquistAndDcBinsAreReal) {
  const core::M3xuEngine engine;
  const int n = 128;
  RealFft rf(n, 16, &engine);
  Rng rng(89);
  std::vector<float> x(n);
  for (auto& v : x) v = rng.uniform(-1.0f, 1.0f);
  std::vector<std::complex<float>> spec(n / 2 + 1);
  rf.forward(x.data(), spec.data());
  EXPECT_NEAR(spec[0].imag(), 0.0, 1e-4);
  EXPECT_NEAR(spec[n / 2].imag(), 0.0, 1e-4);
}

TEST(GemmFft2d, DcComponentIsImageSum) {
  const core::M3xuEngine engine;
  const int rows = 8, cols = 8;
  GemmFft2d f(rows, cols, 4, &engine);
  std::vector<std::complex<float>> img(rows * cols, {0.25f, 0.0f});
  f.forward(img.data());
  EXPECT_NEAR(img[0].real(), 0.25 * rows * cols, 1e-4);
  for (std::size_t i = 1; i < img.size(); ++i) {
    EXPECT_NEAR(std::abs(std::complex<double>(img[i])), 0.0, 1e-4);
  }
}

TEST(FftConv, MatchesDirectCircularConvolution) {
  const core::M3xuEngine engine;
  Rng rng(86);
  const int rows = 32, cols = 32, kh = 5, kw = 3;
  std::vector<float> img(rows * cols), ker(kh * kw);
  for (auto& v : img) v = rng.uniform(-1.0f, 1.0f);
  for (auto& v : ker) v = rng.uniform(-1.0f, 1.0f);
  const auto ref = conv2d_circular_reference(img, rows, cols, ker, kh, kw);
  const auto got = fft_conv2d_circular(img, rows, cols, ker, kh, kw, engine);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(got[i], ref[i], 2e-4) << i;
  }
}

TEST(FftConv, DeltaKernelIsIdentity) {
  const core::M3xuEngine engine;
  Rng rng(87);
  const int rows = 16, cols = 16;
  std::vector<float> img(rows * cols);
  for (auto& v : img) v = rng.uniform(-1.0f, 1.0f);
  const std::vector<float> delta = {1.0f};
  const auto got = fft_conv2d_circular(img, rows, cols, delta, 1, 1, engine);
  for (std::size_t i = 0; i < img.size(); ++i) {
    EXPECT_NEAR(got[i], img[i], 1e-5);
  }
}

TEST(FftConv, BoxKernelAveragesAndShifts) {
  // A shifted delta kernel must rotate the image circularly.
  const core::M3xuEngine engine;
  const int rows = 8, cols = 8;
  std::vector<float> img(rows * cols, 0.0f);
  img[0] = 1.0f;
  std::vector<float> ker(2 * 2, 0.0f);
  ker[3] = 1.0f;  // delta at (1,1)
  const auto got = fft_conv2d_circular(img, rows, cols, ker, 2, 2, engine);
  EXPECT_NEAR(got[1 * cols + 1], 1.0f, 1e-5);
  double rest = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (i != 1 * cols + 1) rest += std::fabs(got[i]);
  }
  EXPECT_NEAR(rest, 0.0, 1e-3);
}

TEST(Poly, MultiplicationMatchesSchoolbook) {
  const core::M3xuEngine engine;
  Rng rng(84);
  for (int trial = 0; trial < 20; ++trial) {
    const int dp = 1 + static_cast<int>(rng.next_below(60));
    const int dq = 1 + static_cast<int>(rng.next_below(60));
    std::vector<std::int64_t> p(dp), q(dq);
    for (auto& v : p) v = static_cast<std::int64_t>(rng.next_below(201)) - 100;
    for (auto& v : q) v = static_cast<std::int64_t>(rng.next_below(201)) - 100;
    EXPECT_EQ(poly_multiply(p, q, engine), poly_multiply_reference(p, q))
        << trial;
  }
}

TEST(Poly, KnownProduct) {
  const core::M3xuEngine engine;
  // (1 + 2x)(3 + x + x^2) = 3 + 7x + 3x^2 + 2x^3
  const std::vector<std::int64_t> got =
      poly_multiply({1, 2}, {3, 1, 1}, engine);
  EXPECT_EQ(got, (std::vector<std::int64_t>{3, 7, 3, 2}));
}

TEST(Poly, NegacyclicWrapsWithSignFlip) {
  const core::M3xuEngine engine;
  // In Z[x]/(x^4+1): x^3 * x = x^4 = -1.
  const std::vector<std::int64_t> p = {0, 0, 0, 1};
  const std::vector<std::int64_t> q = {0, 1, 0, 0};
  const auto got = poly_multiply_negacyclic(p, q, engine);
  EXPECT_EQ(got, (std::vector<std::int64_t>{-1, 0, 0, 0}));
}

TEST(Poly, NegacyclicMatchesDirectReduction) {
  const core::M3xuEngine engine;
  Rng rng(85);
  const std::size_t n = 32;
  std::vector<std::int64_t> p(n), q(n);
  for (auto& v : p) v = static_cast<std::int64_t>(rng.next_below(41)) - 20;
  for (auto& v : q) v = static_cast<std::int64_t>(rng.next_below(41)) - 20;
  const auto full = poly_multiply_reference(p, q);
  std::vector<std::int64_t> ref(n, 0);
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (i < n) {
      ref[i] += full[i];
    } else {
      ref[i - n] -= full[i];  // x^n = -1
    }
  }
  EXPECT_EQ(poly_multiply_negacyclic(p, q, engine), ref);
}

TEST(Poly, CoefficientCeilingIsDocumentedByTest) {
  // FP32C keeps products exact but the FFT accumulates rounding: with
  // n=64 and coefficients up to B the result magnitudes reach ~n*B^2.
  // B = 1000 (result ~6.4e7, needs 26 bits) still round-trips; this
  // pins the usable envelope the header documents.
  const core::M3xuEngine engine;
  Rng rng(86);
  std::vector<std::int64_t> p(64), q(64);
  for (auto& v : p) v = static_cast<std::int64_t>(rng.next_below(2001)) - 1000;
  for (auto& v : q) v = static_cast<std::int64_t>(rng.next_below(2001)) - 1000;
  EXPECT_EQ(poly_multiply(p, q, engine), poly_multiply_reference(p, q));
}

// --- Fig 6 timing bands ------------------------------------------------

TEST(Fig6, M3xuBeatsCuFftEverywhere) {
  const sim::GpuSim gpu(sim::GpuConfig::a100());
  for (int l = 12; l <= 24; l += 4) {
    const long n = 1L << l;
    const long batch = std::max<long>(1, (1L << 26) / n);
    const double cufft = time_fft(gpu, FftImpl::kCuFft, n, batch).seconds;
    const double m3xu = time_fft(gpu, FftImpl::kM3xu, n, batch).seconds;
    const double sp = cufft / m3xu;
    EXPECT_GT(sp, 1.1) << l;
    EXPECT_LT(sp, 2.1) << l;  // paper: up to 1.99x
  }
}

TEST(Fig6, TcFftDoesNotImprove) {
  const sim::GpuSim gpu(sim::GpuConfig::a100());
  double total_cufft = 0.0, total_tc = 0.0;
  for (int l = 12; l <= 24; l += 4) {
    const long n = 1L << l;
    const long batch = std::max<long>(1, (1L << 26) / n);
    total_cufft += time_fft(gpu, FftImpl::kCuFft, n, batch).seconds;
    total_tc += time_fft(gpu, FftImpl::kTcFftTf32, n, batch).seconds;
  }
  EXPECT_GT(total_tc, total_cufft * 0.85);  // "no improvement over cuFFT"
}

TEST(Fig6, StageCountsFollowRadix) {
  const sim::GpuSim gpu(sim::GpuConfig::a100());
  const FftTime cufft = time_fft(gpu, FftImpl::kCuFft, 1 << 16, 64);
  const FftTime m3xu = time_fft(gpu, FftImpl::kM3xu, 1 << 16, 64);
  EXPECT_EQ(cufft.stages, 6);  // radix-8 on 2^16
  EXPECT_EQ(m3xu.stages, 4);   // radix-16
}

}  // namespace
}  // namespace m3xu::fft
