// Property tests for the register-blocked microkernel: the packed GEMM
// with the microkernel enabled must be bit-identical to the per-dot
// route (and to the per-element packed path) across geometry sweeps
// straddling the MR/NR block and K-chunk boundaries, subnormal inputs,
// Inf/NaN operands (which bypass the microkernel at the routing seam),
// wide exponent spans that force the per-pair generic fallback, nonzero
// and signed-zero C, non-default rounding configs, prepacked sub-block
// offsets, and injector-attached engines (which must stay on the
// per-dot-identical generic path and replay identical fault logs).
#include <gtest/gtest.h>

#include <complex>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "core/microkernel.hpp"
#include "core/mxu.hpp"
#include "core/packed_panel.hpp"
#include "fault/injector.hpp"

namespace m3xu::core {
namespace {

M3xuEngine packed_only_engine(M3xuConfig cfg = {}) {
  cfg.enable_microkernel = false;
  return M3xuEngine(cfg);
}

std::vector<float> random_buffer(int rows, int cols, Rng& rng, bool benign) {
  std::vector<float> v(static_cast<std::size_t>(rows) * cols);
  for (auto& x : v) x = benign ? rng.scaled_float() : rng.any_finite_float();
  return v;
}

std::vector<std::complex<float>> random_cbuffer(int rows, int cols, Rng& rng,
                                                bool benign) {
  std::vector<std::complex<float>> v(static_cast<std::size_t>(rows) * cols);
  for (auto& x : v) {
    x = benign ? std::complex<float>(rng.scaled_float(), rng.scaled_float())
               : std::complex<float>(rng.any_finite_float(),
                                     rng.any_finite_float());
  }
  return v;
}

void expect_bitwise_equal(const std::vector<float>& x,
                          const std::vector<float>& y, const char* what) {
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_EQ(bits_of(x[i]), bits_of(y[i])) << what << " element " << i;
  }
}

void expect_bitwise_equal(const std::vector<std::complex<float>>& x,
                          const std::vector<std::complex<float>>& y,
                          const char* what) {
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_EQ(bits_of(x[i].real()), bits_of(y[i].real()))
        << what << " re " << i;
    ASSERT_EQ(bits_of(x[i].imag()), bits_of(y[i].imag()))
        << what << " im " << i;
  }
}

/// Runs one FP32 shape through per-dot, packed-without-microkernel, and
/// packed-with-microkernel; asserts all three agree bitwise.
void check_fp32(const M3xuEngine& micro, const M3xuEngine& packed, int m,
                int n, int k, const std::vector<float>& a,
                const std::vector<float>& b, const std::vector<float>& c) {
  auto c0 = c, c1 = c, c2 = c;
  micro.gemm_fp32(m, n, k, a.data(), k, b.data(), n, c0.data(), n);
  packed.gemm_fp32_packed(m, n, k, a.data(), k, b.data(), n, c1.data(), n);
  micro.gemm_fp32_packed(m, n, k, a.data(), k, b.data(), n, c2.data(), n);
  expect_bitwise_equal(c0, c1, "packed-vs-perdot");
  expect_bitwise_equal(c0, c2, "microkernel-vs-perdot");
}

void check_fp32c(const M3xuEngine& micro, const M3xuEngine& packed, int m,
                 int n, int k, const std::vector<std::complex<float>>& a,
                 const std::vector<std::complex<float>>& b,
                 const std::vector<std::complex<float>>& c) {
  auto c0 = c, c1 = c, c2 = c;
  micro.gemm_fp32c(m, n, k, a.data(), k, b.data(), n, c0.data(), n);
  packed.gemm_fp32c_packed(m, n, k, a.data(), k, b.data(), n, c1.data(), n);
  micro.gemm_fp32c_packed(m, n, k, a.data(), k, b.data(), n, c2.data(), n);
  expect_bitwise_equal(c0, c1, "packed-vs-perdot");
  expect_bitwise_equal(c0, c2, "microkernel-vs-perdot");
}

// --- Geometry sweep ----------------------------------------------------

TEST(MicrokernelFp32, GeometrySweepAroundBlockAndChunkBoundaries) {
  // m, n straddle the 4x4 register block (edge tiles 1..3 wide plus
  // full blocks); k straddles the FP32 chunk width 8 (partial chunk,
  // exact multiples, and the first lane of the next chunk).
  const M3xuEngine micro;
  const M3xuEngine packed = packed_only_engine();
  int idx = 0;
  for (const int m : {1, 3, 4, 5, 8, 9}) {
    for (const int n : {1, 3, 4, 5, 9}) {
      for (const int k : {1, 7, 8, 9, 16, 17}) {
        Rng rng(3100 + idx++);
        const auto a = random_buffer(m, k, rng, false);
        const auto b = random_buffer(k, n, rng, false);
        const auto c = random_buffer(m, n, rng, true);
        check_fp32(micro, packed, m, n, k, a, b, c);
      }
    }
  }
}

TEST(MicrokernelFp32c, GeometrySweepAroundBlockAndChunkBoundaries) {
  // FP32C chunk width is 4; keep the sweep smaller since each complex
  // element costs four scalar dot streams.
  const M3xuEngine micro;
  const M3xuEngine packed = packed_only_engine();
  int idx = 0;
  for (const int m : {1, 3, 4, 5, 9}) {
    for (const int n : {1, 4, 5, 9}) {
      for (const int k : {1, 3, 4, 5, 8, 9}) {
        Rng rng(4100 + idx++);
        const auto a = random_cbuffer(m, k, rng, false);
        const auto b = random_cbuffer(k, n, rng, false);
        const auto c = random_cbuffer(m, n, rng, true);
        check_fp32c(micro, packed, m, n, k, a, b, c);
      }
    }
  }
}

// --- Value-class corners ----------------------------------------------

TEST(MicrokernelFp32, SubnormalsFlushIdentically) {
  // Subnormal operands flush to zero in the hardware split; the
  // microkernel must treat the resulting all-zero lanes exactly like
  // the scalar paths (including zero-times-anything and empty sums
  // producing +0).
  const M3xuEngine micro;
  const M3xuEngine packed = packed_only_engine();
  const float sub_min = std::numeric_limits<float>::denorm_min();
  const float sub_max = 1.17549421e-38f;  // largest subnormal
  for (int trial = 0; trial < 4; ++trial) {
    Rng rng(5200 + trial);
    const int m = 6, n = 7, k = 17;
    auto a = random_buffer(m, k, rng, true);
    auto b = random_buffer(k, n, rng, true);
    for (int i = 0; i < 24; ++i) {
      a[rng.next_below(a.size())] = rng.next_below(2) ? sub_min : -sub_max;
      b[rng.next_below(b.size())] = rng.next_below(2) ? -sub_min : sub_max;
    }
    // One all-subnormal row: every product flushes, C passes through.
    for (int j = 0; j < k; ++j) a[static_cast<std::size_t>(2) * k + j] = sub_max;
    auto c = random_buffer(m, n, rng, true);
    c[0] = -0.0f;
    c[1] = 0.0f;
    check_fp32(micro, packed, m, n, k, a, b, c);
  }
}

TEST(MicrokernelFp32, InfNanOperandsBypassAtRoutingSeam) {
  // Specials mark the packed panels has_special, which must route the
  // whole GEMM around the microkernel; the result still has to match
  // per-dot bit-for-bit (Inf/NaN propagation included).
  const M3xuEngine micro;
  const M3xuEngine packed = packed_only_engine();
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (int trial = 0; trial < 4; ++trial) {
    Rng rng(6200 + trial);
    const int m = 5, n = 6, k = 12;
    auto a = random_buffer(m, k, rng, true);
    auto b = random_buffer(k, n, rng, true);
    const float specials[] = {inf, -inf, nan};
    for (int i = 0; i < 6; ++i) {
      a[rng.next_below(a.size())] = specials[rng.next_below(3)];
      if (trial % 2 == 0) b[rng.next_below(b.size())] = specials[rng.next_below(3)];
    }
    const auto c = random_buffer(m, n, rng, true);
    check_fp32(micro, packed, m, n, k, a, b, c);
  }
}

TEST(MicrokernelFp32, WideExponentSpansFallBackBitIdentically) {
  // Mix magnitudes near the FP32 extremes so chunk prescan windows
  // exceed the 128-bit fixed-point budget and individual 4x4 pairs
  // fall through to the generic per-dot-replica path mid-block. Also
  // seed C with huge/tiny values so the register fold exercises the
  // dropped-bits fallback.
  const M3xuEngine micro;
  const M3xuEngine packed = packed_only_engine();
  for (int trial = 0; trial < 6; ++trial) {
    Rng rng(7200 + trial);
    const int m = 7, n = 8, k = 24;
    auto a = random_buffer(m, k, rng, false);
    auto b = random_buffer(k, n, rng, false);
    const float extremes[] = {3e38f,      -2.5e38f,  1.2e-38f, -4e-38f,
                              1.5e30f,    -2e-30f,   6e19f,    -7e-19f};
    for (std::size_t i = 0; i < a.size(); i += 3) {
      a[i] = extremes[rng.next_below(8)];
    }
    for (std::size_t i = 0; i < b.size(); i += 2) {
      b[i] = extremes[rng.next_below(8)];
    }
    auto c = random_buffer(m, n, rng, false);
    c[0] = 3.4e38f;
    c[1] = -1e-38f;
    check_fp32(micro, packed, m, n, k, a, b, c);
  }
}

TEST(MicrokernelFp32c, WideExponentSpansFallBackBitIdentically) {
  const M3xuEngine micro;
  const M3xuEngine packed = packed_only_engine();
  for (int trial = 0; trial < 4; ++trial) {
    Rng rng(8200 + trial);
    const int m = 5, n = 5, k = 9;
    auto a = random_cbuffer(m, k, rng, false);
    auto b = random_cbuffer(k, n, rng, false);
    const float extremes[] = {3e38f, -1.2e-38f, 2e30f, -5e-30f};
    for (std::size_t i = 0; i < a.size(); i += 2) {
      a[i] = {extremes[rng.next_below(4)], a[i].imag()};
    }
    for (std::size_t i = 0; i < b.size(); i += 3) {
      b[i] = {b[i].real(), extremes[rng.next_below(4)]};
    }
    const auto c = random_cbuffer(m, n, rng, false);
    check_fp32c(micro, packed, m, n, k, a, b, c);
  }
}

// --- Rounding-config sweep --------------------------------------------

TEST(MicrokernelFp32, NonDefaultRoundingConfigsStayBitIdentical) {
  // Both register semantics (per-step and the idealized single-rounding
  // ablation) at several accumulation precisions must agree with the
  // per-dot route through the microkernel's fused step paths.
  for (const bool per_step : {true, false}) {
    for (const int prec : {24, 48, 63}) {
      M3xuConfig cfg;
      cfg.per_step_rounding = per_step;
      cfg.accum_prec = prec;
      const M3xuEngine micro(cfg);
      const M3xuEngine packed = packed_only_engine(cfg);
      Rng rng(9300 + prec + (per_step ? 1000 : 0));
      const int m = 6, n = 9, k = 26;
      const auto a = random_buffer(m, k, rng, false);
      const auto b = random_buffer(k, n, rng, false);
      const auto c = random_buffer(m, n, rng, true);
      check_fp32(micro, packed, m, n, k, a, b, c);
      const int ck = 12;
      const auto ca = random_cbuffer(m, ck, rng, false);
      const auto cb = random_cbuffer(ck, n, rng, false);
      const auto cc = random_cbuffer(m, n, rng, true);
      check_fp32c(micro, packed, m, n, ck, ca, cb, cc);
    }
  }
}

// --- Prepacked sub-block offsets --------------------------------------

TEST(MicrokernelFp32, PrepackedOffsetsAlignWithChunkMetadata) {
  // Sub-block row0/col0 offsets that are not multiples of the 4x4
  // block must still index the right per-chunk prescan metadata rows.
  const int rows = 19, cols = 17, k = 21;
  Rng rng(10400);
  const auto a = random_buffer(rows, k, rng, false);
  const auto b = random_buffer(k, cols, rng, false);
  PackedPanelFp32A pa;
  PackedPanelFp32B pb;
  pack_fp32_a(a.data(), k, rows, k, pa);
  pack_fp32_b(b.data(), cols, k, cols, pb);
  const M3xuEngine micro;
  const struct {
    int row0, col0, m, n;
  } blocks[] = {{0, 0, rows, cols}, {1, 2, 9, 9}, {5, 3, 8, 12},
                {13, 9, 6, 8},      {18, 16, 1, 1}};
  for (const auto& blk : blocks) {
    auto c0 = random_buffer(blk.m, blk.n, rng, true);
    auto c1 = c0;
    micro.gemm_fp32(blk.m, blk.n, k,
                    a.data() + static_cast<std::size_t>(blk.row0) * k, k,
                    b.data() + blk.col0, cols, c0.data(), blk.n);
    micro.gemm_fp32_prepacked(pa, blk.row0, pb, blk.col0, blk.m, blk.n,
                              c1.data(), blk.n);
    expect_bitwise_equal(c0, c1, "prepacked-offset");
  }
}

// --- Dispatch matrix ---------------------------------------------------
//
// The SIMD variant and the register-block shape are pure performance
// knobs: every (variant, MRxNR) combination the host can run must be
// bit-identical to the per-dot route on the same condensed property
// sweep the default config is tested with above.

TEST(MicrokernelDispatch, ResolutionRespectsAvailability) {
  for (const MkVariant v : {MkVariant::kAuto, MkVariant::kScalar,
                            MkVariant::kAvx2, MkVariant::kAvx512}) {
    const MkVariant r = mk_variant_resolve(v);
    EXPECT_TRUE(mk_variant_available(r)) << mk_variant_name(v);
    EXPECT_NE(r, MkVariant::kAuto) << mk_variant_name(v);
    if (v != MkVariant::kAuto) {
      // A forced-but-unavailable variant clamps down, never up.
      EXPECT_LE(static_cast<int>(r), static_cast<int>(v))
          << mk_variant_name(v);
    }
  }
  // Scalar is unconditionally available and never redirected.
  EXPECT_TRUE(mk_variant_available(MkVariant::kScalar));
  EXPECT_EQ(mk_variant_resolve(MkVariant::kScalar), MkVariant::kScalar);
}

TEST(MicrokernelDispatch, BlockShapeResolution) {
  EXPECT_TRUE(mk_block_supported(4, 4));
  EXPECT_TRUE(mk_block_supported(6, 8));
  EXPECT_TRUE(mk_block_supported(8, 8));
  EXPECT_FALSE(mk_block_supported(5, 5));
  EXPECT_FALSE(mk_block_supported(0, 4));
  EXPECT_FALSE(mk_block_supported(8, 4));
  const MkBlockShape def = mk_block_resolve(0, 0);
  EXPECT_TRUE(mk_block_supported(def.mr, def.nr));
  const MkBlockShape forced = mk_block_resolve(6, 8);
  EXPECT_EQ(forced.mr, 6);
  EXPECT_EQ(forced.nr, 8);
}

TEST(MicrokernelDispatch, EveryVariantAndShapeMatchesPerDot) {
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float sub = std::numeric_limits<float>::denorm_min();
  int combo = 0;
  for (const MkVariant v :
       {MkVariant::kScalar, MkVariant::kAvx2, MkVariant::kAvx512}) {
    if (!mk_variant_available(v)) continue;  // host without that ISA
    for (const MkBlockShape shape :
         {MkBlockShape{4, 4}, MkBlockShape{6, 8}, MkBlockShape{8, 8}}) {
      SCOPED_TRACE(std::string(mk_variant_name(v)) + " " +
                   std::to_string(shape.mr) + "x" + std::to_string(shape.nr));
      M3xuConfig cfg;
      cfg.mk_variant = v;
      cfg.mk_mr = shape.mr;
      cfg.mk_nr = shape.nr;
      cfg.mk_prefetch = (combo % 2 == 0);  // both prefetch settings
      const M3xuEngine micro(cfg);
      const M3xuEngine packed = packed_only_engine(cfg);

      // Geometry straddling this shape's block boundaries and the
      // K-chunk width.
      for (const int m : {1, shape.mr - 1, shape.mr, shape.mr + 1,
                          2 * shape.mr + 3}) {
        for (const int n : {1, shape.nr, shape.nr + 2}) {
          const int k = 17;
          Rng rng(31000 + 97 * combo + 7 * m + n);
          const auto a = random_buffer(m, k, rng, false);
          const auto b = random_buffer(k, n, rng, false);
          const auto c = random_buffer(m, n, rng, true);
          check_fp32(micro, packed, m, n, k, a, b, c);
        }
      }
      {
        // Subnormals, specials, and wide spans in one salted batch.
        Rng rng(32000 + combo);
        const int m = shape.mr + 2, n = shape.nr + 1, k = 19;
        auto a = random_buffer(m, k, rng, false);
        auto b = random_buffer(k, n, rng, false);
        a[0] = sub;
        a[1] = -sub;
        b[0] = inf;
        b[1] = nan;
        a[2] = 3e38f;
        b[2] = -1.2e-38f;
        const auto c = random_buffer(m, n, rng, true);
        check_fp32(micro, packed, m, n, k, a, b, c);
      }
      {
        // Complex route with the same forced dispatch.
        Rng rng(33000 + combo);
        const int m = shape.mr + 1, n = shape.nr, k = 9;
        const auto a = random_cbuffer(m, k, rng, false);
        const auto b = random_cbuffer(k, n, rng, false);
        const auto c = random_cbuffer(m, n, rng, true);
        check_fp32c(micro, packed, m, n, k, a, b, c);
      }
      {
        // Prepacked sub-block offsets must index the per-chunk prescan
        // metadata correctly for every MRxNR, not just the default.
        const int rows = 2 * shape.mr + 3, cols = 2 * shape.nr + 1, k = 13;
        Rng rng(34000 + combo);
        const auto a = random_buffer(rows, k, rng, false);
        const auto b = random_buffer(k, cols, rng, false);
        PackedPanelFp32A pa;
        PackedPanelFp32B pb;
        pack_fp32_a(a.data(), k, rows, k, pa);
        pack_fp32_b(b.data(), cols, k, cols, pb);
        const int row0 = 1, col0 = 2;
        const int bm = rows - row0, bn = cols - col0;
        auto c0 = random_buffer(bm, bn, rng, true);
        auto c1 = c0;
        micro.gemm_fp32(bm, bn, k,
                        a.data() + static_cast<std::size_t>(row0) * k, k,
                        b.data() + col0, cols, c0.data(), bn);
        micro.gemm_fp32_prepacked(pa, row0, pb, col0, bm, bn, c1.data(), bn);
        expect_bitwise_equal(c0, c1, "prepacked-offset-dispatch");
      }
      ++combo;
    }
  }
  EXPECT_GE(combo, 3);  // at least the scalar variant ran all shapes
}

TEST(MicrokernelDispatch, InjectorDeterminismUnderForcedDispatch) {
  // Injector-attached engines take the generic per-dot-replica path
  // regardless of the dispatch config; a forced variant/shape must not
  // perturb outputs or the fault log.
  for (const MkVariant v :
       {MkVariant::kScalar, MkVariant::kAvx2, MkVariant::kAvx512}) {
    if (!mk_variant_available(v)) continue;
    const fault::SiteRates rates = fault::SiteRates::uniform(2e-3);
    const fault::FaultInjector inj_ref(2600, rates);
    const fault::FaultInjector inj_forced(2600, rates);
    M3xuConfig cfg_ref, cfg_forced;
    cfg_ref.injector = &inj_ref;
    cfg_forced.injector = &inj_forced;
    cfg_forced.mk_variant = v;
    cfg_forced.mk_mr = 8;
    cfg_forced.mk_nr = 8;
    const M3xuEngine ref(cfg_ref);
    const M3xuEngine forced(cfg_forced);
    Rng rng(35000);
    const int m = 9, n = 8, k = 20;
    const auto a = random_buffer(m, k, rng, true);
    const auto b = random_buffer(k, n, rng, true);
    auto c0 = random_buffer(m, n, rng, true);
    auto c1 = c0;
    ref.gemm_fp32_packed(m, n, k, a.data(), k, b.data(), n, c0.data(), n);
    forced.gemm_fp32_packed(m, n, k, a.data(), k, b.data(), n, c1.data(), n);
    expect_bitwise_equal(c0, c1, "forced-dispatch-fault-replay");
    EXPECT_EQ(inj_ref.log(), inj_forced.log()) << mk_variant_name(v);
  }
}

// --- Fault-injection determinism recheck ------------------------------

TEST(MicrokernelFault, InjectorAttachedEnginesStayDeterministic) {
  // An injector-attached engine must ignore enable_microkernel, replay
  // the per-dot fault-opportunity order exactly, and produce identical
  // outputs and logs whether or not the flag is set.
  for (int trial = 0; trial < 3; ++trial) {
    const fault::SiteRates rates = fault::SiteRates::uniform(2e-3);
    const fault::FaultInjector inj_perdot(1500 + trial, rates);
    const fault::FaultInjector inj_micro(1500 + trial, rates);
    M3xuConfig cfg_perdot, cfg_micro;
    cfg_perdot.injector = &inj_perdot;
    cfg_micro.injector = &inj_micro;
    cfg_micro.enable_microkernel = true;
    const M3xuEngine perdot(cfg_perdot);
    const M3xuEngine micro(cfg_micro);
    Rng rng(11500 + trial);
    const int m = 9, n = 8, k = 20;
    const auto a = random_buffer(m, k, rng, true);
    const auto b = random_buffer(k, n, rng, true);
    auto c0 = random_buffer(m, n, rng, true);
    auto c1 = c0;
    perdot.gemm_fp32(m, n, k, a.data(), k, b.data(), n, c0.data(), n);
    micro.gemm_fp32_packed(m, n, k, a.data(), k, b.data(), n, c1.data(), n);
    expect_bitwise_equal(c0, c1, "fault-replay");
    EXPECT_GT(inj_perdot.total_injected(), 0u);
    EXPECT_EQ(inj_perdot.log(), inj_micro.log());
    for (int s = 0; s < fault::kSiteCount; ++s) {
      const auto site = static_cast<fault::Site>(s);
      EXPECT_EQ(inj_perdot.opportunities(site), inj_micro.opportunities(site))
          << "site " << s;
      EXPECT_EQ(inj_perdot.injected(site), inj_micro.injected(site))
          << "site " << s;
    }
  }
}

}  // namespace
}  // namespace m3xu::core
