// Telemetry subsystem tests: sharded counter aggregation (including
// under the thread pool and across thread exit), histogram bucketing,
// the span ring (wraparound, trace JSON schema), ModelClock, the JSON
// writer, and the metrics export. Every test also compiles and passes
// in an M3XU_TELEMETRY=OFF build, where the recording paths are no-ops
// and the exports emit empty sections.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "telemetry/export.hpp"
#include "telemetry/json.hpp"
#include "telemetry/model_clock.hpp"
#include "telemetry/stopwatch.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "telemetry/trace_context.hpp"

namespace telemetry = m3xu::telemetry;

namespace {

std::size_t count_occurrences(const std::string& s, const std::string& sub) {
  std::size_t n = 0;
  for (std::size_t pos = s.find(sub); pos != std::string::npos;
       pos = s.find(sub, pos + sub.size())) {
    ++n;
  }
  return n;
}

const telemetry::Snapshot::HistogramValue* find_hist(
    const telemetry::Snapshot& snap, const std::string& name) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

}  // namespace

TEST(TelemetryCounter, ShardAggregationUnderParallelFor) {
  static telemetry::Counter ctr("test.shard_aggregation");
  constexpr std::size_t kN = 10000;
  const telemetry::Snapshot before = telemetry::snapshot();
  m3xu::parallel_for(kN, [](std::size_t i) { ctr.add(i + 1); });
  const telemetry::Snapshot after = telemetry::snapshot();
  // Sum 1..kN, independent of how iterations landed on pool threads.
  const std::uint64_t expected = kN * (kN + 1) / 2;
#if M3XU_TELEMETRY_ENABLED
  EXPECT_EQ(after.counter_delta(before, "test.shard_aggregation"), expected);
#else
  EXPECT_EQ(after.counter_delta(before, "test.shard_aggregation"), 0u);
#endif
}

TEST(TelemetryCounter, DeterministicAcrossRuns) {
  static telemetry::Counter ctr("test.determinism");
  const auto run = [] {
    const telemetry::Snapshot before = telemetry::snapshot();
    m3xu::parallel_for(4096, [](std::size_t i) { ctr.add(i % 7); });
    const telemetry::Snapshot after = telemetry::snapshot();
    return after.counter_delta(before, "test.determinism");
  };
  EXPECT_EQ(run(), run());
}

TEST(TelemetryCounter, SameNameSharesSlot) {
  static telemetry::Counter a("test.same_name");
  static telemetry::Counter b("test.same_name");
  const telemetry::Snapshot before = telemetry::snapshot();
  a.add(3);
  b.add(4);
  const telemetry::Snapshot after = telemetry::snapshot();
#if M3XU_TELEMETRY_ENABLED
  EXPECT_EQ(after.counter_delta(before, "test.same_name"), 7u);
#else
  EXPECT_EQ(after.counter_delta(before, "test.same_name"), 0u);
#endif
}

TEST(TelemetryCounter, ExitedThreadFoldsIntoRetired) {
  static telemetry::Counter ctr("test.retired_fold");
  const telemetry::Snapshot before = telemetry::snapshot();
  std::thread t([] { ctr.add(42); });
  t.join();
  const telemetry::Snapshot after = telemetry::snapshot();
#if M3XU_TELEMETRY_ENABLED
  EXPECT_EQ(after.counter_delta(before, "test.retired_fold"), 42u);
#else
  EXPECT_EQ(after.counter_delta(before, "test.retired_fold"), 0u);
#endif
}

TEST(TelemetrySnapshot, AbsentCounterIsZero) {
  const telemetry::Snapshot snap = telemetry::snapshot();
  EXPECT_EQ(snap.counter("no.such.counter"), 0u);
  EXPECT_EQ(snap.counter_delta(snap, "no.such.counter"), 0u);
}

TEST(TelemetryHistogram, BucketOfIsBitWidth) {
  using telemetry::Histogram;
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(255), 8);
  EXPECT_EQ(Histogram::bucket_of(256), 9);
  // Width 47 is the last in-range bucket; wider values clamp to it.
  EXPECT_EQ(Histogram::bucket_of(std::uint64_t{1} << 46),
            telemetry::kHistBuckets - 1);
  EXPECT_EQ(Histogram::bucket_of(std::uint64_t{1} << 47),
            telemetry::kHistBuckets - 1);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}),
            telemetry::kHistBuckets - 1);
}

TEST(TelemetryHistogram, RecordAggregatesCountSumBuckets) {
  static telemetry::Histogram h("test.hist_record");
  const telemetry::Snapshot before = telemetry::snapshot();
  h.record(1);
  h.record(2);
  h.record(3);
  const telemetry::Snapshot after = telemetry::snapshot();
#if M3XU_TELEMETRY_ENABLED
  const auto* hb = find_hist(before, "test.hist_record");
  const auto* ha = find_hist(after, "test.hist_record");
  ASSERT_NE(ha, nullptr);
  ASSERT_NE(hb, nullptr);
  EXPECT_EQ(ha->count - hb->count, 3u);
  EXPECT_EQ(ha->sum - hb->sum, 6u);
  EXPECT_EQ(ha->buckets[1] - hb->buckets[1], 1u);  // value 1
  EXPECT_EQ(ha->buckets[2] - hb->buckets[2], 2u);  // values 2, 3
#else
  EXPECT_EQ(find_hist(after, "test.hist_record"), nullptr);
#endif
}

TEST(ModelClock, AdvanceAddsLaunchOverheadPerLaunch) {
  telemetry::ModelClock clock;
  const double c1 = clock.advance("gemm", 1.0);
  EXPECT_DOUBLE_EQ(c1, 1.0 + telemetry::ModelClock::kLaunchSeconds);
  const double c2 = clock.advance("gemm", 2.0, 3);
  EXPECT_DOUBLE_EQ(c2, 2.0 + 3 * telemetry::ModelClock::kLaunchSeconds);
  const double c3 = clock.advance("epilogue", 0.5, 0);  // cost sharing
  EXPECT_DOUBLE_EQ(c3, 0.5);
  EXPECT_DOUBLE_EQ(clock.seconds(), c1 + c2 + c3);
  EXPECT_DOUBLE_EQ(clock.phase_seconds("gemm"), c1 + c2);
  EXPECT_DOUBLE_EQ(clock.phase_seconds("epilogue"), c3);
  EXPECT_DOUBLE_EQ(clock.phase_seconds("absent"), 0.0);
  EXPECT_EQ(clock.phases().size(), 2u);
}

TEST(JsonWriter, StructureAndEscaping) {
  EXPECT_EQ(telemetry::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  telemetry::JsonWriter w;
  w.begin_object();
  w.kv("str", "va\"lue");
  w.kv("num", 42);
  w.kv("flag", true);
  w.key("arr").begin_array();
  w.value(1);
  w.value(2);
  w.end_array();
  w.end_object();
  const std::string& j = w.str();
  EXPECT_NE(j.find("\"str\": \"va\\\"lue\""), std::string::npos);
  EXPECT_NE(j.find("\"num\": 42"), std::string::npos);
  EXPECT_NE(j.find("\"flag\": true"), std::string::npos);
  EXPECT_EQ(count_occurrences(j, "{"), count_occurrences(j, "}"));
  EXPECT_EQ(count_occurrences(j, "["), count_occurrences(j, "]"));
}

TEST(Trace, ScopedTimerEmitsSpanAndAccumulates) {
  telemetry::reset_trace();
  double acc = 0.0;
  {
    const telemetry::ScopedTimer t("test.span_emit", &acc);
  }
  const std::string j = telemetry::trace_json();
#if M3XU_TELEMETRY_ENABLED
  EXPECT_GE(acc, 0.0);
  EXPECT_NE(j.find("test.span_emit"), std::string::npos);
  EXPECT_NE(j.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(j.find("thread_name"), std::string::npos);
#else
  EXPECT_EQ(acc, 0.0);  // the OFF-build stub never touches the accum
  EXPECT_EQ(j.find("test.span_emit"), std::string::npos);
#endif
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("\"displayTimeUnit\""), std::string::npos);
}

TEST(Trace, RingWraparoundKeepsNewestCapacitySpans) {
  telemetry::reset_trace();
  const std::uint64_t t0 = telemetry::now_ns();
  for (std::size_t i = 0; i < telemetry::kSpanRingCapacity + 100; ++i) {
    telemetry::emit_span("test.wrap", t0 + i, 10);
  }
  const std::string j = telemetry::trace_json();
#if M3XU_TELEMETRY_ENABLED
  EXPECT_EQ(count_occurrences(j, "test.wrap"), telemetry::kSpanRingCapacity);
#else
  EXPECT_EQ(count_occurrences(j, "test.wrap"), 0u);
#endif
}

TEST(TraceJson, EventsCarryCompleteEventSchema) {
  telemetry::reset_trace();
  telemetry::emit_span("test.schema", telemetry::now_ns(), 1500);
  const std::string j = telemetry::trace_json();
  EXPECT_EQ(j.front(), '{');
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
#if M3XU_TELEMETRY_ENABLED
  // One "X" complete event with ts/dur/pid/tid, plus thread metadata.
  EXPECT_EQ(count_occurrences(j, "\"ph\": \"X\""), 1u);
  EXPECT_NE(j.find("\"ts\""), std::string::npos);
  EXPECT_NE(j.find("\"dur\""), std::string::npos);
  EXPECT_NE(j.find("\"pid\""), std::string::npos);
  EXPECT_NE(j.find("\"tid\""), std::string::npos);
  EXPECT_EQ(count_occurrences(j, "\"ph\": \"M\""),
            count_occurrences(j, "thread_name"));
#endif
}

TEST(Export, MetricsJsonHasEnvironmentCountersHistograms) {
  static telemetry::Counter ctr("test.export_visible");
  ctr.add(5);
  const std::string j = telemetry::metrics_json();
  EXPECT_NE(j.find("\"environment\""), std::string::npos);
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"histograms\""), std::string::npos);
  EXPECT_NE(j.find("\"telemetry_enabled\""), std::string::npos);
#if M3XU_TELEMETRY_ENABLED
  EXPECT_NE(j.find("test.export_visible"), std::string::npos);
#else
  EXPECT_EQ(j.find("test.export_visible"), std::string::npos);
#endif
}

TEST(Export, SnapshotMatchesBuildConfig) {
  static telemetry::Counter ctr("test.build_config");
  ctr.increment();
  const telemetry::Snapshot snap = telemetry::snapshot();
#if M3XU_TELEMETRY_ENABLED
  EXPECT_GE(snap.counter("test.build_config"), 1u);
#else
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.histograms.empty());
#endif
}

TEST(Stopwatch, MonotoneNonNegative) {
  const telemetry::Stopwatch sw;
  const std::uint64_t a = sw.elapsed_ns();
  const std::uint64_t b = sw.elapsed_ns();
  EXPECT_LE(a, b);
  EXPECT_GE(sw.seconds(), 0.0);
}

// ---------------------------------------------------------------------------
// JsonValue round-trip hardening: exact integers at the double
// boundary, escape sequences, nesting depth bounds, and rejection of
// the number spellings JSON forbids.
// ---------------------------------------------------------------------------

TEST(JsonRoundTrip, IntegersNearDoubleBoundaryStayExact) {
  const std::uint64_t cases[] = {
      (1ull << 53) - 1, (1ull << 53), (1ull << 53) + 1,
      (1ull << 63),     UINT64_MAX,   0ull};
  for (const std::uint64_t v : cases) {
    telemetry::JsonWriter w;
    w.begin_object().kv("v", v).end_object();
    const auto doc = telemetry::JsonValue::parse(w.str());
    ASSERT_TRUE(doc.has_value()) << w.str();
    // as_uint must be bit-exact even where double would round.
    EXPECT_EQ(doc->find("v")->as_uint(), v) << w.str();
  }
  telemetry::JsonWriter w;
  w.begin_object().kv("v", std::numeric_limits<long>::min()).end_object();
  const auto doc = telemetry::JsonValue::parse(w.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("v")->as_int(),
            static_cast<std::int64_t>(std::numeric_limits<long>::min()));
}

TEST(JsonRoundTrip, EscapeSequencesSurviveWriterParserCycle) {
  const std::string nasty =
      "quote:\" backslash:\\ newline:\n tab:\t cr:\r bell:\x07 del:\x7f";
  telemetry::JsonWriter w;
  w.begin_object().kv("s", nasty).end_object();
  const auto doc = telemetry::JsonValue::parse(w.str());
  ASSERT_TRUE(doc.has_value()) << w.str();
  EXPECT_EQ(doc->find("s")->as_string(), nasty);
  // Standard escape spellings parse too.
  const auto esc = telemetry::JsonValue::parse(
      "{\"s\": \"a\\u0041\\t\\\"b\\\\c\\/d\"}");
  ASSERT_TRUE(esc.has_value());
  EXPECT_EQ(esc->find("s")->as_string(), "aA\t\"b\\c/d");
}

TEST(JsonParse, NestingIsBoundedNotUnbounded) {
  const auto nested = [](int depth) {
    std::string s(static_cast<std::size_t>(depth), '[');
    s.append(static_cast<std::size_t>(depth), ']');
    return s;
  };
  EXPECT_TRUE(telemetry::JsonValue::parse(nested(60)).has_value());
  // Past the parser's depth bound: reject rather than overflow the
  // stack on adversarial input.
  EXPECT_FALSE(telemetry::JsonValue::parse(nested(200)).has_value());
}

TEST(JsonParse, RejectsNonFiniteAndMalformedNumbers) {
  EXPECT_FALSE(telemetry::JsonValue::parse("NaN").has_value());
  EXPECT_FALSE(telemetry::JsonValue::parse("Infinity").has_value());
  EXPECT_FALSE(telemetry::JsonValue::parse("-Infinity").has_value());
  EXPECT_FALSE(telemetry::JsonValue::parse("{\"v\": 1e999}").has_value());
  EXPECT_FALSE(telemetry::JsonValue::parse("{\"v\": 01}").has_value());
  EXPECT_FALSE(telemetry::JsonValue::parse("{\"v\": +1}").has_value());
  EXPECT_FALSE(telemetry::JsonValue::parse("{\"v\": .5}").has_value());
  // ... while ordinary scientific notation still parses.
  const auto ok = telemetry::JsonValue::parse("{\"v\": -1.25e2}");
  ASSERT_TRUE(ok.has_value());
  EXPECT_DOUBLE_EQ(ok->find("v")->as_double(), -125.0);
}

TEST(JsonWriter, NonFiniteDoublesSerializeAsNull) {
  telemetry::JsonWriter w;
  w.begin_object()
      .kv("nan", std::numeric_limits<double>::quiet_NaN())
      .kv("inf", std::numeric_limits<double>::infinity())
      .end_object();
  const auto doc = telemetry::JsonValue::parse(w.str());
  ASSERT_TRUE(doc.has_value()) << w.str();
  EXPECT_TRUE(doc->find("nan")->is_null());
  EXPECT_TRUE(doc->find("inf")->is_null());
}

// ---------------------------------------------------------------------------
// Telemetry under concurrency: counters, histograms, and trace
// contexts hammered from the thread pool while the main thread takes
// registry snapshots and trace exports mid-write. Run under
// M3XU_SANITIZE=thread (label: tsan) this is the data-race proof; in a
// plain build it still checks totals.
// ---------------------------------------------------------------------------

TEST(TelemetryConcurrency, SnapshotWhileWritingIsConsistent) {
  static telemetry::Counter ctr("test.concurrent_snapshot");
  static telemetry::Histogram hist("test.concurrent_snapshot_hist");
  constexpr std::size_t kN = 20000;
  const telemetry::Snapshot before = telemetry::snapshot();
  std::atomic<bool> done{false};
  std::thread reader([&] {
    // Interleave snapshots with the writers; every intermediate view
    // must be internally consistent (count >= populated buckets sum is
    // checked implicitly by Snapshot aggregation; here we assert
    // monotone counter growth).
    std::uint64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const telemetry::Snapshot mid = telemetry::snapshot();
      const std::uint64_t seen =
          mid.counter_delta(before, "test.concurrent_snapshot");
      EXPECT_GE(seen, last);
      last = seen;
    }
  });
  m3xu::parallel_for(kN, [](std::size_t i) {
    ctr.increment();
    hist.record(i + 1);
    telemetry::TraceContext ctx("hammer", "concurrent");
    ctx.event("tick", static_cast<long>(i));
    (void)ctx.to_json();
  });
  done.store(true, std::memory_order_release);
  reader.join();
  const telemetry::Snapshot after = telemetry::snapshot();
#if M3XU_TELEMETRY_ENABLED
  EXPECT_EQ(after.counter_delta(before, "test.concurrent_snapshot"), kN);
  const auto* h = find_hist(after, "test.concurrent_snapshot_hist");
  ASSERT_NE(h, nullptr);
  EXPECT_GE(h->count, kN);
#else
  EXPECT_EQ(after.counter_delta(before, "test.concurrent_snapshot"), 0u);
#endif
}

TEST(TelemetryConcurrency, TraceExportWhileSpansRetire) {
  telemetry::reset_trace();
  std::atomic<bool> done{false};
  std::thread exporter([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::string j = telemetry::trace_json();
      EXPECT_FALSE(j.empty());
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([] {
      for (int i = 0; i < 200; ++i) {
        telemetry::ScopedTimer span("test.concurrent_span");
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  exporter.join();
  const std::string final_json = telemetry::trace_json();
  EXPECT_EQ(final_json, telemetry::trace_json());  // stable once quiescent
}
