// Tests for the GEMM kernel inventory: functional correctness of every
// kernel against the double reference, and the precision ordering the
// paper's argument rests on (M3XU ~= FP32 SIMT; 3xTF32 and 3xBF16
// software emulations strictly lossier).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "gemm/kernels.hpp"
#include "gemm/reference.hpp"

namespace m3xu::gemm {
namespace {

struct Problem {
  Matrix<float> a, b, c0;
  Matrix<double> exact;
};

void fill_positive(Matrix<float>& m, Rng& rng) {
  for (int i = 0; i < m.rows(); ++i) {
    for (int j = 0; j < m.cols(); ++j) m(i, j) = rng.uniform(0.25f, 1.0f);
  }
}

Problem make_problem(int m, int n, int k, std::uint64_t seed,
                     bool positive = false) {
  Problem p{Matrix<float>(m, k), Matrix<float>(k, n), Matrix<float>(m, n),
            Matrix<double>(m, n)};
  Rng rng(seed);
  if (positive) {
    // Well-conditioned (no cancellation): relative error bounds are
    // meaningful and tight.
    fill_positive(p.a, rng);
    fill_positive(p.b, rng);
  } else {
    fill_random(p.a, rng);
    fill_random(p.b, rng);
  }
  p.c0.fill(0.0f);
  p.exact.fill(0.0);
  exact_gemm(p.a, p.b, p.exact);
  return p;
}

ErrorStats kernel_error(SgemmKernel kernel, const Problem& p) {
  const core::M3xuEngine engine;
  Matrix<float> c = p.c0;
  run_sgemm(kernel, engine, p.a, p.b, c);
  return compare(c, p.exact);
}

class AllSgemmKernels : public ::testing::TestWithParam<SgemmKernel> {};

TEST_P(AllSgemmKernels, CloseToExactReference) {
  const Problem p = make_problem(48, 40, 96, 71, /*positive=*/true);
  const ErrorStats e = kernel_error(GetParam(), p);
  // Even the lossiest kernel (3xBF16) recovers ~16 mantissa bits; with
  // well-conditioned inputs every kernel stays within 1e-4 relative.
  EXPECT_LT(e.max_rel, 1e-4) << kernel_name(GetParam());
}

TEST_P(AllSgemmKernels, BoundedOnCancellationHeavyData) {
  // Signed wide-dynamic-range inputs: absolute error stays bounded by
  // the problem scale even where relative error blows up.
  const Problem p = make_problem(32, 32, 64, 79);
  const ErrorStats e = kernel_error(GetParam(), p);
  EXPECT_LT(e.max_abs, 1.0) << kernel_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, AllSgemmKernels,
    ::testing::Values(SgemmKernel::kSimt, SgemmKernel::kTensorOp3xTf32,
                      SgemmKernel::kTensorOp4xTf32, SgemmKernel::kEehc3xBf16,
                      SgemmKernel::kM3xu),
    [](const auto& info) { return kernel_name(info.param); });

TEST(SgemmPrecisionOrdering, PerProductExactness) {
  // K=1 isolates product precision from accumulation effects: M3XU's
  // split products are exact (correctly rounded FP32, error <= 2^-25
  // relative); the software emulations drop bits per product. This is
  // the bit-level claim of SV-B ("no additional error compared to
  // conventional FP32 ALUs"; prior software approaches lose 1+ bits).
  const Problem p = make_problem(64, 64, 1, 72);
  const double simt = kernel_error(SgemmKernel::kSimt, p).max_rel;
  const double m3xu = kernel_error(SgemmKernel::kM3xu, p).max_rel;
  const double tf32x3 = kernel_error(SgemmKernel::kTensorOp3xTf32, p).max_rel;
  const double tf32x4 = kernel_error(SgemmKernel::kTensorOp4xTf32, p).max_rel;
  const double bf16x3 = kernel_error(SgemmKernel::kEehc3xBf16, p).max_rel;
  EXPECT_LE(m3xu, std::ldexp(1.0, -24));   // correctly rounded
  EXPECT_LE(simt, std::ldexp(1.0, -24));   // FMA, single rounding
  EXPECT_GT(tf32x3, std::ldexp(1.0, -24));  // dropped lo*lo term
  EXPECT_GT(bf16x3, tf32x3);                // BF16 splits are coarser
  EXPECT_LE(tf32x4, tf32x3);                // the 4th GEMM recovers bits
}

TEST(SgemmPrecisionOrdering, AccumulationOnWellConditionedData) {
  // With no cancellation, M3XU (one rounding per 8-wide chunk, 48-bit
  // registers) accumulates at least as accurately as the per-element
  // FP32 FMA chain, and the lossy-product emulations sit above both.
  const Problem p = make_problem(48, 48, 256, 73, /*positive=*/true);
  const double simt = kernel_error(SgemmKernel::kSimt, p).mean_rel;
  const double m3xu = kernel_error(SgemmKernel::kM3xu, p).mean_rel;
  const double bf16x3 = kernel_error(SgemmKernel::kEehc3xBf16, p).mean_rel;
  EXPECT_LE(m3xu, simt * 1.05);
  EXPECT_GT(bf16x3, m3xu);
}

TEST(SgemmKernels, AccumulateIntoNonZeroC) {
  const core::M3xuEngine engine;
  Rng rng(73);
  Matrix<float> a(8, 16), b(16, 8), c(8, 8);
  fill_random(a, rng);
  fill_random(b, rng);
  fill_random(c, rng);
  Matrix<double> ref = widen(c);
  ref_dgemm(widen(a), widen(b), ref);
  Matrix<float> c_m3xu = c;
  run_sgemm(SgemmKernel::kM3xu, engine, a, b, c_m3xu);
  const ErrorStats e = compare(c_m3xu, ref);
  EXPECT_LT(e.max_rel, 1e-5);
}

TEST(SgemmKernels, DeterministicAcrossRuns) {
  const core::M3xuEngine engine;
  const Problem p = make_problem(70, 33, 50, 74);
  Matrix<float> c1 = p.c0, c2 = p.c0;
  run_sgemm(SgemmKernel::kM3xu, engine, p.a, p.b, c1);
  run_sgemm(SgemmKernel::kM3xu, engine, p.a, p.b, c2);
  for (int i = 0; i < c1.rows(); ++i) {
    for (int j = 0; j < c1.cols(); ++j) {
      EXPECT_EQ(bits_of(c1(i, j)), bits_of(c2(i, j)));
    }
  }
}

TEST(SplitMatrix, HiPlusLoApproximatesInput) {
  Rng rng(75);
  Matrix<float> m(13, 17);
  fill_random(m, rng);
  const SplitMatrices s = split_matrix(m, fp::kTf32);
  for (int i = 0; i < m.rows(); ++i) {
    for (int j = 0; j < m.cols(); ++j) {
      const double recon = static_cast<double>(s.hi(i, j)) + s.lo(i, j);
      if (m(i, j) != 0.0f) {
        EXPECT_LE(std::fabs(recon - m(i, j)) / std::fabs(m(i, j)),
                  std::ldexp(1.0, -21));
      }
    }
  }
}

// Complex matrices with a dominant real part on B so neither output
// component suffers catastrophic cancellation (relative bounds stay
// meaningful).
void fill_conditioned_complex(Matrix<std::complex<float>>& a,
                              Matrix<std::complex<float>>& b, Rng& rng) {
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) {
      a(i, j) = {rng.uniform(0.25f, 1.0f), rng.uniform(0.25f, 1.0f)};
    }
  }
  for (int i = 0; i < b.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) {
      b(i, j) = {rng.uniform(0.5f, 1.0f), rng.uniform(0.0f, 0.2f)};
    }
  }
}

class AllCgemmKernels : public ::testing::TestWithParam<CgemmKernel> {};

TEST_P(AllCgemmKernels, CloseToDoubleReference) {
  Rng rng(76);
  const int m = 24, n = 20, k = 48;
  Matrix<std::complex<float>> a(m, k), b(k, n), c(m, n);
  fill_conditioned_complex(a, b, rng);
  c.fill({});
  Matrix<std::complex<double>> ref(m, n);
  ref.fill({});
  ref_zgemm(widen(a), widen(b), ref);
  const core::M3xuEngine engine;
  run_cgemm(GetParam(), engine, a, b, c);
  EXPECT_LT(compare(c, ref).max_rel, 1e-4) << kernel_name(GetParam());
}

TEST_P(AllCgemmKernels, BoundedOnCancellationHeavyData) {
  Rng rng(176);
  const int m = 16, n = 16, k = 32;
  Matrix<std::complex<float>> a(m, k), b(k, n), c(m, n);
  fill_random(a, rng);
  fill_random(b, rng);
  c.fill({});
  Matrix<std::complex<double>> ref(m, n);
  ref.fill({});
  ref_zgemm(widen(a), widen(b), ref);
  const core::M3xuEngine engine;
  run_cgemm(GetParam(), engine, a, b, c);
  EXPECT_LT(compare(c, ref).max_abs, 1.0) << kernel_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Kernels, AllCgemmKernels,
                         ::testing::Values(CgemmKernel::kSimt,
                                           CgemmKernel::kTensorOp3xTf32,
                                           CgemmKernel::kM3xu),
                         [](const auto& info) {
                           return kernel_name(info.param);
                         });

TEST(CgemmPrecisionOrdering, M3xuBeatsTf32Emulation) {
  Rng rng(77);
  const int m = 32, n = 32, k = 128;
  Matrix<std::complex<float>> a(m, k), b(k, n);
  fill_random(a, rng);
  fill_random(b, rng);
  Matrix<std::complex<double>> ref(m, n);
  ref.fill({});
  ref_zgemm(widen(a), widen(b), ref);
  const core::M3xuEngine engine;
  auto err = [&](CgemmKernel kk) {
    Matrix<std::complex<float>> c(m, n);
    c.fill({});
    run_cgemm(kk, engine, a, b, c);
    return compare(c, ref).mean_rel;
  };
  const double simt = err(CgemmKernel::kSimt);
  const double m3xu = err(CgemmKernel::kM3xu);
  EXPECT_LE(m3xu, simt * 1.05);
}

TEST(CgemmPrecisionOrdering, PerProductExactness) {
  // K=1 complex outer product with O(1) magnitudes: the error is pure
  // product precision. M3XU components round once at FP32 (abs error
  // <= ~2^-24); the TF32 emulation's dropped lo*lo terms sit near
  // 2^-21.
  Rng rng(78);
  const int m = 48, n = 48, k = 1;
  Matrix<std::complex<float>> a(m, k), b(k, n);
  for (int i = 0; i < m; ++i) {
    a(i, 0) = {rng.uniform(0.25f, 1.0f), rng.uniform(0.25f, 1.0f)};
  }
  for (int j = 0; j < n; ++j) {
    b(0, j) = {rng.uniform(0.25f, 1.0f), rng.uniform(0.25f, 1.0f)};
  }
  Matrix<std::complex<double>> ref(m, n);
  ref.fill({});
  ref_zgemm(widen(a), widen(b), ref);
  const core::M3xuEngine engine;
  auto err = [&](CgemmKernel kk) {
    Matrix<std::complex<float>> c(m, n);
    c.fill({});
    run_cgemm(kk, engine, a, b, c);
    return compare(c, ref).max_abs;  // absolute: components may cancel
  };
  // Scale-normalized absolute error comparison (observed ratio ~4x;
  // assert a conservative margin).
  EXPECT_GT(err(CgemmKernel::kTensorOp3xTf32), err(CgemmKernel::kM3xu) * 2.5);
}

TEST(Hgemm, Fp16ForwardPassSemantics) {
  // Small-integer inputs are FP16-exact: the mixed-precision forward
  // GEMM must be exact; larger mantissas must show FP16 loss.
  const core::M3xuEngine engine;
  Rng rng(78);
  Matrix<float> a(8, 32), b(32, 8), c(8, 8);
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) {
      a(i, j) = static_cast<float>(rng.next_below(9)) - 4.0f;
    }
  }
  for (int i = 0; i < b.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) {
      b(i, j) = static_cast<float>(rng.next_below(9)) - 4.0f;
    }
  }
  c.fill(0.0f);
  tensorop_hgemm(engine, a, b, c);
  Matrix<double> ref(8, 8);
  ref.fill(0.0);
  ref_dgemm(widen(a), widen(b), ref);
  EXPECT_EQ(compare(c, ref).max_abs, 0.0);
  // Now with full mantissas (well-conditioned): FP16 loss appears.
  fill_positive(a, rng);
  fill_positive(b, rng);
  c.fill(0.0f);
  tensorop_hgemm(engine, a, b, c);
  ref.fill(0.0);
  ref_dgemm(widen(a), widen(b), ref);
  EXPECT_GT(compare(c, ref).mean_rel, 1e-7);
  EXPECT_LT(compare(c, ref).max_rel, 1e-2);
}

TEST(KernelNames, MatchTableIV) {
  EXPECT_STREQ(kernel_name(SgemmKernel::kSimt), "cutlass_simt_sgemm");
  EXPECT_STREQ(kernel_name(SgemmKernel::kTensorOp3xTf32),
               "cutlass_tensorop_sgemm");
  EXPECT_STREQ(kernel_name(SgemmKernel::kEehc3xBf16), "EEHC_sgemm_fp32B");
  EXPECT_STREQ(kernel_name(CgemmKernel::kM3xu), "m3xu_cgemm");
}

}  // namespace
}  // namespace m3xu::gemm
