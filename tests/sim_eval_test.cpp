// System-level tests for the kernel timing models: Table I peaks, the
// SV-B emulation contracts (2x / 4x instruction counts and traffic),
// and the Fig 4 / Fig 5 speedup, peak-fraction, and energy orderings.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/eval_kernels.hpp"

namespace m3xu::sim {
namespace {

const GpuSim& gpu() {
  static const GpuSim sim(GpuConfig::a100());
  return sim;
}

constexpr long kBig = 8192;

TEST(ConfigPeaks, MatchTableOne) {
  const GpuConfig c = GpuConfig::a100();
  EXPECT_NEAR(c.fp32_simt_peak() / 1e12, 19.5, 0.1);
  EXPECT_NEAR(c.fp16_simd_peak() / 1e12, 78.0, 0.5);
  EXPECT_NEAR(c.bf16_simd_peak() / 1e12, 39.0, 0.3);
  EXPECT_NEAR(c.tf32_tc_peak() / 1e12, 156.0, 1.0);
  EXPECT_NEAR(c.fp16_tc_peak() / 1e12, 312.0, 2.0);
  EXPECT_NEAR(c.m3xu_fp32_peak() / 1e12, 78.0, 0.5);
  // Complex MACs count as 4 real flops (cuBLAS CGEMM convention), so
  // the FP32C rate of 1/16 FP16-TC MACs reports as 78 TFLOPS - exactly
  // 4x the SIMT CGEMM rate, the paper's SIII-C claim.
  EXPECT_NEAR(c.m3xu_fp32c_peak() / 1e12, 78.0, 0.5);
  EXPECT_NEAR(c.m3xu_fp32c_peak() / c.fp32_simt_peak(), 4.0, 0.1);
}

TEST(AchievedPeaks, ComputeBoundKernelsSaturate) {
  const GpuConfig& c = gpu().config();
  EXPECT_GT(time_hgemm(gpu(), kBig, kBig, kBig).achieved_flops,
            0.95 * c.fp16_tc_peak());
  EXPECT_GT(time_sgemm(gpu(), SgemmVariant::kM3xu, kBig, kBig, kBig)
                .achieved_flops,
            0.94 * c.m3xu_fp32_peak());
  EXPECT_GT(time_sgemm(gpu(), SgemmVariant::kSimt, kBig, kBig, kBig)
                .achieved_flops,
            0.95 * c.fp32_simt_peak());
  EXPECT_GT(time_cgemm(gpu(), CgemmVariant::kM3xu, kBig, kBig, kBig)
                .achieved_flops,
            0.94 * c.m3xu_fp32c_peak());
  EXPECT_GT(time_dgemm(gpu(), DgemmVariant::kM3xu, kBig, kBig, kBig)
                .achieved_flops,
            0.94 * c.m3xu_fp64_peak());
}

TEST(EmulationContract, InstructionCounts) {
  // SV-B: each M3XU FP32 MMA covers half the K of an FP16 MMA -> 2x the
  // instruction count for the same problem; FP32C covers a quarter.
  const GemmTime fp16 = time_hgemm(gpu(), 4096, 4096, 4096);
  const GemmTime fp32 =
      time_sgemm(gpu(), SgemmVariant::kM3xu, 4096, 4096, 4096);
  const GemmTime fp32c =
      time_cgemm(gpu(), CgemmVariant::kM3xu, 4096, 4096, 4096);
  const double r32 = static_cast<double>(fp32.detail.mma_instructions) /
                     fp16.detail.mma_instructions;
  const double r32c = static_cast<double>(fp32c.detail.mma_instructions) /
                      fp16.detail.mma_instructions;
  EXPECT_NEAR(r32, 2.0, 0.1);
  EXPECT_NEAR(r32c, 4.0, 0.2);
}

TEST(EmulationContract, MemoryTraffic) {
  // FP32 inputs are 2x the bytes of FP16; FP32C are 4x.
  const GemmTime fp16 = time_hgemm(gpu(), 4096, 4096, 4096);
  const GemmTime fp32 =
      time_sgemm(gpu(), SgemmVariant::kM3xu, 4096, 4096, 4096);
  const GemmTime fp32c =
      time_cgemm(gpu(), CgemmVariant::kM3xu, 4096, 4096, 4096);
  EXPECT_NEAR(fp32.detail.l2_bytes / fp16.detail.l2_bytes, 2.0, 0.3);
  EXPECT_NEAR(fp32c.detail.l2_bytes / fp16.detail.l2_bytes, 4.0, 0.6);
}

TEST(Fig4a, SpeedupBands) {
  const GemmTime simt =
      time_sgemm(gpu(), SgemmVariant::kSimt, kBig, kBig, kBig);
  const double m3xu =
      simt.seconds /
      time_sgemm(gpu(), SgemmVariant::kM3xu, kBig, kBig, kBig).seconds;
  const double np = simt.seconds /
                    time_sgemm(gpu(), SgemmVariant::kM3xuNonPipelined, kBig,
                               kBig, kBig)
                        .seconds;
  const double tf32 = simt.seconds /
                      time_sgemm(gpu(), SgemmVariant::kTensorOp3xTf32, kBig,
                                 kBig, kBig)
                          .seconds;
  const double eehc = simt.seconds /
                      time_sgemm(gpu(), SgemmVariant::kEehc3xBf16, kBig,
                                 kBig, kBig)
                          .seconds;
  // Paper: M3XU up to 3.89x; software up to 2.67x (3.10x w/o decouple);
  // non-pipelined = pipelined / 1.21.
  EXPECT_GT(m3xu, 3.7);
  EXPECT_LE(m3xu, 4.05);
  EXPECT_NEAR(m3xu / np, 1.21, 0.03);
  EXPECT_GT(tf32, 2.4);
  EXPECT_LT(tf32, 2.8);
  EXPECT_GT(eehc, 2.2);
  EXPECT_LT(eehc, 3.1);
  EXPECT_GT(m3xu, std::max(tf32, eehc));
}

TEST(Fig4a, SaturatesWithSize) {
  auto speedup = [&](long size) {
    const double simt =
        time_sgemm(gpu(), SgemmVariant::kSimt, size, size, size).seconds;
    return simt /
           time_sgemm(gpu(), SgemmVariant::kM3xu, size, size, size).seconds;
  };
  const double s1k = speedup(1024);
  const double s8k = speedup(8192);
  const double s16k = speedup(16384);
  EXPECT_GT(s1k, 1.0);
  EXPECT_LE(s1k, s8k + 0.05);
  EXPECT_NEAR(s8k, s16k, 0.1);  // saturated above 8K (paper)
}

TEST(Fig4b, ComplexSpeedupBands) {
  const GemmTime simt =
      time_cgemm(gpu(), CgemmVariant::kSimt, kBig, kBig, kBig);
  const double m3xu =
      simt.seconds /
      time_cgemm(gpu(), CgemmVariant::kM3xu, kBig, kBig, kBig).seconds;
  const double tf32 = simt.seconds /
                      time_cgemm(gpu(), CgemmVariant::kTensorOp3xTf32, kBig,
                                 kBig, kBig)
                          .seconds;
  EXPECT_GT(m3xu, 3.5);  // paper: up to 3.82x (theoretical 4x)
  EXPECT_LE(m3xu, 4.05);
  EXPECT_LT(tf32, 2.9);  // paper: software up to ~2.1x
  EXPECT_GT(m3xu, tf32);
}

TEST(Fig5c, PeakFractions) {
  const GpuConfig& c = gpu().config();
  const double target = c.m3xu_fp32_peak();
  const double m3xu = time_sgemm(gpu(), SgemmVariant::kM3xu, kBig, kBig,
                                 kBig)
                          .achieved_flops /
                      target;
  const double sw = time_sgemm(gpu(), SgemmVariant::kTensorOp3xTf32, kBig,
                               kBig, kBig)
                        .achieved_flops /
                    target;
  EXPECT_GT(m3xu, 0.94);  // paper: >94%
  EXPECT_LT(sw, 0.75);    // paper: <=63%
}

TEST(Fig5a, EnergyOrdering) {
  auto energy = [&](SgemmVariant v) {
    return time_sgemm(gpu(), v, kBig, kBig, kBig).energy;
  };
  const double fp32mxu = energy(SgemmVariant::kFp32Mxu);
  const double m3xu = energy(SgemmVariant::kM3xu);
  const double np = energy(SgemmVariant::kM3xuNonPipelined);
  const double sw = std::min(energy(SgemmVariant::kTensorOp3xTf32),
                             energy(SgemmVariant::kEehc3xBf16));
  // Paper ordering: non-pipelined < pipelined < software < FP32-MXU.
  EXPECT_LT(np, m3xu);
  EXPECT_LT(m3xu, sw);
  EXPECT_LT(sw, fp32mxu);
  // Magnitudes: M3XU at least ~35% below FP32-MXU (paper: 61%).
  EXPECT_LT(m3xu / fp32mxu, 0.65);
  EXPECT_LT(np / fp32mxu, 0.55);
}

TEST(Fig5b, ComplexEnergyOrdering) {
  auto energy = [&](CgemmVariant v) {
    return time_cgemm(gpu(), v, kBig, kBig, kBig).energy;
  };
  const double fp32mxu = energy(CgemmVariant::kFp32Mxu);
  const double m3xu = energy(CgemmVariant::kM3xu);
  const double np = energy(CgemmVariant::kM3xuNonPipelined);
  const double sw = energy(CgemmVariant::kTensorOp3xTf32);
  EXPECT_LT(np, m3xu);
  EXPECT_LT(m3xu, sw);
  EXPECT_LT(sw, fp32mxu);
}

TEST(Streaming, BandwidthBound) {
  const double bytes = 4e9;
  const KernelTiming t = time_streaming(gpu(), bytes, 0.0);
  const double ideal = bytes / (gpu().config().dram_bandwidth_gbs * 1e9);
  EXPECT_GT(t.seconds, ideal * 0.95);
  EXPECT_LT(t.seconds, ideal * 1.5);
}

TEST(Streaming, WritesCountToo) {
  const KernelTiming rw = time_streaming(gpu(), 2e9, 2e9);
  const KernelTiming ro = time_streaming(gpu(), 2e9, 0.0);
  EXPECT_GT(rw.seconds, ro.seconds * 1.5);
}

TEST(Decouple, SoftwareVariantsPayForSplitting) {
  const GemmTime eehc =
      time_sgemm(gpu(), SgemmVariant::kEehc3xBf16, 2048, 2048, 2048);
  EXPECT_GT(eehc.decouple_seconds, 0.0);
  EXPECT_LT(eehc.decouple_seconds, eehc.seconds * 0.3);
  const GemmTime m3xu =
      time_sgemm(gpu(), SgemmVariant::kM3xu, 2048, 2048, 2048);
  EXPECT_EQ(m3xu.decouple_seconds, 0.0);  // native FP32: no decoupling
}

TEST(KernelTimingOps, AdditionAggregates) {
  KernelTiming a, b;
  a.seconds = 1.0;
  a.energy = 5.0;
  a.dram_bytes = 10.0;
  b.seconds = 2.0;
  b.energy = 7.0;
  b.dram_bytes = 20.0;
  const KernelTiming c = a + b;
  EXPECT_DOUBLE_EQ(c.seconds, 3.0);
  EXPECT_DOUBLE_EQ(c.energy, 12.0);
  EXPECT_DOUBLE_EQ(c.dram_bytes, 30.0);
}

TEST(Extrapolation, TruncatedMainloopMatchesFullSimulation) {
  // The kernel timer simulates 48 mainloop iterations and extrapolates;
  // for a K small enough to simulate fully, both paths must agree.
  const GpuConfig cfg = GpuConfig::a100();
  const GpuSim sim(cfg);
  // K = 1024 with cta_k=16 -> 64 iterations (extrapolated);
  // K = 768 -> 48 iterations (simulated exactly). Compare the implied
  // per-iteration cycle cost.
  const GemmTime long_k =
      time_sgemm(sim, SgemmVariant::kM3xu, 4096, 4096, 1024);
  const GemmTime short_k =
      time_sgemm(sim, SgemmVariant::kM3xu, 4096, 4096, 768);
  const double per_iter_long = long_k.seconds / (1024.0 / 16.0);
  const double per_iter_short = short_k.seconds / (768.0 / 16.0);
  EXPECT_NEAR(per_iter_long / per_iter_short, 1.0, 0.05);
}

TEST(DeviceConfigs, HopperAndCdna2Targets) {
  // SIII-C projections.
  const GpuConfig h100 = GpuConfig::h100();
  EXPECT_NEAR(h100.m3xu_fp32_peak() / 1e12, 248.0, 3.0);
  EXPECT_NEAR(h100.m3xu_fp32_peak() / h100.fp32_simt_peak(), 4.0, 0.05);
  const GpuConfig mi = GpuConfig::mi250_gcd();
  EXPECT_NEAR(mi.fp16_tc_peak() / mi.fp32_simt_peak(), 8.0, 0.1);
  EXPECT_NEAR(mi.m3xu_fp32_peak() / mi.fp32_simt_peak(), 2.0, 0.05);
}

TEST(DeviceConfigs, SimulatorSaturatesOtherDevices) {
  for (const GpuConfig& cfg : {GpuConfig::h100(), GpuConfig::mi250_gcd()}) {
    const GpuSim sim(cfg);
    const GemmTime t = time_sgemm(sim, SgemmVariant::kM3xu, 8192, 8192,
                                  8192);
    EXPECT_GT(t.achieved_flops, 0.93 * cfg.m3xu_fp32_peak());
    EXPECT_LE(t.achieved_flops, 1.01 * cfg.m3xu_fp32_peak());
  }
}

TEST(Dgemm, M3xuFp64SpeedupOverSimtFp64) {
  // FP64 SIMT peak is 9.7 TFLOPS; the M3XU FP64 mode targets 19.5 -
  // a 2x advantage for double-precision GEMM.
  const GemmTime simt = time_dgemm(gpu(), DgemmVariant::kSimt, 4096, 4096,
                                   4096);
  const GemmTime m3 = time_dgemm(gpu(), DgemmVariant::kM3xu, 4096, 4096,
                                 4096);
  const double sp = simt.seconds / m3.seconds;
  EXPECT_GT(sp, 1.8);
  EXPECT_LT(sp, 2.1);
}

TEST(Energy, ComponentsAccumulateLinearly) {
  // Zeroed constants yield only the per-op terms; doubling the DRAM
  // cost raises energy by exactly the DRAM component.
  const GpuConfig c = GpuConfig::a100();
  EnergyConstants zero;
  zero.per_dram_byte = 0.0;
  zero.per_l2_byte = 0.0;
  zero.per_smem_byte = 0.0;
  zero.static_per_sm_cycle = 0.0;
  TensorGemmParams p{kind_m3xu_fp32(c), 1, 0, false, 1.0};
  const KernelLaunch launch = build_tensor_gemm(c, 2048, 2048, 2048, p);
  const KernelTiming ops_only = GpuSim(c, zero).run(launch);
  EXPECT_NEAR(ops_only.energy,
              ops_only.mma_instructions * launch.energy_per_mma,
              ops_only.energy * 0.01);
  EnergyConstants dram_only = zero;
  dram_only.per_dram_byte = 30.0;
  const KernelTiming with_dram = GpuSim(c, dram_only).run(launch);
  EXPECT_NEAR(with_dram.energy - ops_only.energy,
              with_dram.dram_bytes * 30.0, with_dram.energy * 0.01);
}

TEST(Occupancy, SmemBoundKernelsLoseResidency) {
  // A launch whose staging needs >82 KiB per CTA can only fit one CTA
  // per SM: with too few warps to hide latency, throughput drops.
  const GpuConfig c = GpuConfig::a100();
  const GpuSim sim(c);
  TensorGemmParams p{kind_m3xu_fp32(c), 1, 0, false, 1.0};
  KernelLaunch launch = build_tensor_gemm(c, 8192, 8192, 8192, p);
  const double normal = sim.run(launch).seconds;
  launch.smem_bytes_per_cta = c.smem_capacity_bytes * 0.9;  // 1 CTA fits
  const double starved = sim.run(launch).seconds;
  // Half the warps per SM expose some pipeline latency (the kernel is
  // still tensor-bound, so the penalty is moderate).
  EXPECT_GT(starved, normal * 1.05);
}

TEST(Occupancy, OneCtaMustFit) {
  const GpuSim sim(GpuConfig::a100());
  KernelLaunch launch = build_streaming_kernel(sim.config(), 1e6, 0.0);
  launch.smem_bytes_per_cta = sim.config().smem_capacity_bytes * 2.0;
  EXPECT_DEATH((void)sim.run(launch), "");
}

TEST(NonSquare, TallSkinnyAndWideProblems) {
  // Shape robustness: non-square problems run and respect peaks.
  const GemmTime tall =
      time_sgemm(gpu(), SgemmVariant::kM3xu, 65536, 512, 1024);
  const GemmTime wide =
      time_sgemm(gpu(), SgemmVariant::kM3xu, 512, 65536, 1024);
  EXPECT_GT(tall.achieved_flops, 0.2 * gpu().config().m3xu_fp32_peak());
  EXPECT_LE(tall.achieved_flops, 1.01 * gpu().config().m3xu_fp32_peak());
  EXPECT_GT(wide.achieved_flops, 0.2 * gpu().config().m3xu_fp32_peak());
}

}  // namespace
}  // namespace m3xu::sim
