// Unit + property tests for the soft-float format layer: exact decode,
// RNE encode, exhaustive round-trips for the 16-bit formats, and
// correct-rounding cross-checks against the host FPU.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "fp/format.hpp"
#include "fp/types.hpp"
#include "fp/unpacked.hpp"

namespace m3xu::fp {
namespace {

bool is_nan_payload(std::uint64_t payload, const FloatFormat& fmt) {
  const std::uint64_t e = (payload >> fmt.mant_bits) & low_mask(fmt.exp_bits);
  const std::uint64_t m = payload & low_mask(fmt.mant_bits);
  return e == static_cast<std::uint64_t>(fmt.exp_special()) && m != 0;
}

class Exhaustive16BitRoundTrip : public ::testing::TestWithParam<FloatFormat> {
};

TEST_P(Exhaustive16BitRoundTrip, UnpackPackIsIdentity) {
  const FloatFormat fmt = GetParam();
  ASSERT_LE(fmt.total_bits(), 16);
  const std::uint64_t count = std::uint64_t{1} << fmt.total_bits();
  for (std::uint64_t payload = 0; payload < count; ++payload) {
    const Unpacked u = unpack(payload, fmt);
    const std::uint64_t back = pack(u, fmt);
    if (is_nan_payload(payload, fmt)) {
      EXPECT_TRUE(is_nan_payload(back, fmt)) << payload;
    } else {
      EXPECT_EQ(back, payload) << "payload " << payload;
    }
  }
}

TEST_P(Exhaustive16BitRoundTrip, ViaHostFloatIsIdentity) {
  const FloatFormat fmt = GetParam();
  const std::uint64_t count = std::uint64_t{1} << fmt.total_bits();
  for (std::uint64_t payload = 0; payload < count; ++payload) {
    if (is_nan_payload(payload, fmt)) continue;
    // Widening to FP32 is exact for both 16-bit formats, so the
    // round-trip through a host float must be the identity.
    const float f = pack_to_float(unpack(payload, fmt));
    const std::uint64_t back = pack(unpack(f), fmt);
    EXPECT_EQ(back, payload);
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, Exhaustive16BitRoundTrip,
                         ::testing::Values(kFp16, kBf16),
                         [](const auto& info) {
                           return info.param == kFp16 ? "fp16" : "bf16";
                         });

TEST(UnpackFloat, NormalValues) {
  const Unpacked u = unpack(1.5f);
  EXPECT_EQ(u.cls, FpClass::kNormal);
  EXPECT_FALSE(u.sign);
  EXPECT_EQ(u.exp, 0);
  // 1.5 = binary 1.1 -> top two bits set.
  EXPECT_EQ(u.sig >> (Unpacked::kSigTop - 1), 0b11u);
}

TEST(UnpackFloat, SubnormalNormalizes) {
  const float tiny = float_from_bits(0x00000001);  // 2^-149
  const Unpacked u = unpack(tiny);
  EXPECT_EQ(u.cls, FpClass::kNormal);
  EXPECT_EQ(u.exp, -149);
  EXPECT_EQ(u.sig, std::uint64_t{1} << Unpacked::kSigTop);
}

TEST(UnpackFloat, Specials) {
  EXPECT_EQ(unpack(0.0f).cls, FpClass::kZero);
  EXPECT_TRUE(unpack(-0.0f).sign);
  EXPECT_EQ(unpack(std::numeric_limits<float>::infinity()).cls, FpClass::kInf);
  EXPECT_EQ(unpack(std::numeric_limits<float>::quiet_NaN()).cls,
            FpClass::kNaN);
}

TEST(PackFloat, RoundTripRandomBits) {
  Rng rng(1);
  for (int i = 0; i < 2'000'000; ++i) {
    const std::uint32_t bits = rng.next_u32();
    const float f = float_from_bits(bits);
    if (std::isnan(f)) continue;
    EXPECT_EQ(bits_of(pack_to_float(unpack(f))), bits);
  }
}

TEST(PackDouble, RoundTripRandomBits) {
  Rng rng(2);
  for (int i = 0; i < 1'000'000; ++i) {
    const std::uint64_t bits = rng.next_u64();
    const double d = double_from_bits(bits);
    if (std::isnan(d)) continue;
    EXPECT_EQ(bits_of(pack_to_double(unpack(d))), bits);
  }
}

TEST(PackFloat, DoubleToFloatMatchesHostRounding) {
  // pack(unpack(double), fp32) must agree with the host's
  // double->float conversion, which is RNE per IEEE 754.
  Rng rng(3);
  for (int i = 0; i < 1'000'000; ++i) {
    const double d = double_from_bits(rng.next_u64());
    if (std::isnan(d)) continue;
    const float expected = static_cast<float>(d);
    const float actual = pack_to_float(unpack(d));
    EXPECT_EQ(bits_of(expected), bits_of(actual)) << d;
  }
}

TEST(RneShiftRight, Basics) {
  EXPECT_EQ(rne_shift_right(0b1000, 2), 0b10u);   // exact
  EXPECT_EQ(rne_shift_right(0b1010, 2), 0b10u);   // tie to even (down)
  EXPECT_EQ(rne_shift_right(0b1010, 1), 0b101u);  // exact
  EXPECT_EQ(rne_shift_right(0b1001, 1), 0b100u);  // tie to even (down)
  EXPECT_EQ(rne_shift_right(0b1011, 1), 0b110u);  // tie to even (up)
  EXPECT_EQ(rne_shift_right(0b1101, 2), 0b11u);   // below half: down
  EXPECT_EQ(rne_shift_right(5, 0), 5u);
  EXPECT_EQ(rne_shift_right(5, -2), 20u);
  EXPECT_EQ(rne_shift_right(~std::uint64_t{0} >> 1, 64), 0u);
  EXPECT_EQ(rne_shift_right(std::uint64_t{1} << 62, 63), 0u);  // tie to 0
  EXPECT_EQ((rne_shift_right((std::uint64_t{1} << 62) | 1, 63)), 1u);
}

TEST(RoundToFormat, Tf32KeepsTopTenMantissaBits) {
  Rng rng(4);
  for (int i = 0; i < 100'000; ++i) {
    const float f = rng.scaled_float();
    const float t = round_to_format(f, kTf32);
    // TF32 has FP32's exponent range, so conversion only trims mantissa:
    // relative error is at most 2^-11.
    if (f != 0.0f) {
      EXPECT_LE(std::fabs((t - f) / f), std::ldexp(1.0, -11));
    }
    // Idempotence.
    EXPECT_EQ(bits_of(round_to_format(t, kTf32)), bits_of(t));
  }
}

TEST(RoundToFormat, Fp16MatchesBruteForceNearest) {
  // For random floats in FP16 range, the RNE result must be one of the
  // two closest FP16 values, and the closest one when not a tie.
  Rng rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    const float f = rng.uniform(-60000.0f, 60000.0f);
    const float got = round_to_format(f, kFp16);
    double best = std::numeric_limits<double>::infinity();
    for (std::uint32_t p = 0; p < (1u << 16); ++p) {
      const Unpacked u = unpack(p, kFp16);
      if (u.is_nan()) continue;
      const double cand = pack_to_double(u);
      best = std::min(best, std::fabs(cand - static_cast<double>(f)));
    }
    EXPECT_LE(std::fabs(static_cast<double>(got) - static_cast<double>(f)),
              best + 0.0)
        << f;
  }
}

TEST(RoundToFormat, OverflowGoesToInfinity) {
  EXPECT_TRUE(std::isinf(round_to_format(1e30f, kFp16)));
  EXPECT_TRUE(std::isinf(round_to_format(-1e30f, kFp16)));
  EXPECT_LT(round_to_format(-1e30f, kFp16), 0.0f);
  // BF16/TF32 share FP32's exponent range: no overflow possible.
  EXPECT_FALSE(std::isinf(round_to_format(3e38f, kBf16)));
}

TEST(RoundToFormat, UnderflowIsGradual) {
  // 2^-25 rounds to the nearest FP16 subnormal quantum (2^-24): tie
  // between 0 and 2^-24 -> even -> 0.
  EXPECT_EQ(round_to_format(std::ldexp(1.0f, -25), kFp16), 0.0f);
  // Slightly above the tie rounds up to the smallest subnormal.
  EXPECT_EQ(round_to_format(std::ldexp(1.1f, -25), kFp16),
            std::ldexp(1.0f, -24));
}

TEST(StorageTypes, HalfBf16Tf32Basics) {
  EXPECT_EQ(Half::from_float(1.0f).to_float(), 1.0f);
  EXPECT_EQ(Half::from_float(-2.5f).to_float(), -2.5f);
  EXPECT_EQ(Bf16::from_float(1.0f).to_float(), 1.0f);
  EXPECT_EQ(Tf32::from_float(1.0f).to_float(), 1.0f);
  // BF16 keeps only 8 mantissa bits: 1 + 2^-9 collapses to 1.
  EXPECT_EQ(Bf16::from_float(1.0f + std::ldexp(1.0f, -9)).to_float(), 1.0f);
  // TF32 keeps 11: 1 + 2^-10 survives, 1 + 2^-12 collapses.
  EXPECT_NE(Tf32::from_float(1.0f + std::ldexp(1.0f, -10)).to_float(), 1.0f);
  EXPECT_EQ(Tf32::from_float(1.0f + std::ldexp(1.0f, -12)).to_float(), 1.0f);
}

class Fp8Exhaustive : public ::testing::TestWithParam<FloatFormat> {};

TEST_P(Fp8Exhaustive, AllPayloadsRoundTripAndOrder) {
  const FloatFormat fmt = GetParam();
  const std::uint64_t count = std::uint64_t{1} << fmt.total_bits();
  double prev = -std::numeric_limits<double>::infinity();
  for (std::uint64_t p = 0; p < count; ++p) {
    const Unpacked u = unpack(p, fmt);
    if (u.is_nan()) continue;
    EXPECT_EQ(pack(u, fmt), p);
    // Positive payloads (sign bit clear) decode in increasing order.
    if ((p >> (fmt.total_bits() - 1)) == 0) {
      const double v = pack_to_double(u);
      EXPECT_GE(v, prev) << p;
      prev = v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fp8, Fp8Exhaustive,
                         ::testing::Values(kFp8E4M3, kFp8E5M2),
                         [](const auto& info) {
                           return info.param == kFp8E4M3 ? "e4m3" : "e5m2";
                         });

TEST(Fp8, DynamicRangeAndPrecision) {
  // e4m3: max normal 1.875 * 2^7 = 240 in the IEEE-special encoding;
  // e5m2: max normal 1.75 * 2^15 = 57344.
  EXPECT_EQ(round_to_format(200.0f, kFp8E4M3), 192.0f);
  EXPECT_TRUE(std::isinf(round_to_format(300.0f, kFp8E4M3)));
  EXPECT_EQ(round_to_format(50000.0f, kFp8E5M2), 49152.0f);
  // 3 mantissa bits: 1 + 1/16 collapses, 1 + 1/8 survives.
  EXPECT_EQ(round_to_format(1.0625f, kFp8E4M3), 1.0f);
  EXPECT_EQ(round_to_format(1.125f, kFp8E4M3), 1.125f);
}

TEST(FloatFormatDescriptors, DerivedFields) {
  EXPECT_EQ(kFp32.bias(), 127);
  EXPECT_EQ(kFp32.sig_bits(), 24);
  EXPECT_EQ(kFp32.min_normal_exp(), -126);
  EXPECT_EQ(kFp32.max_normal_exp(), 127);
  EXPECT_EQ(kFp16.bias(), 15);
  EXPECT_EQ(kFp64.bias(), 1023);
  EXPECT_EQ(kTf32.total_bits(), 19);
  EXPECT_EQ(kBf16.total_bits(), 16);
}

}  // namespace
}  // namespace m3xu::fp
