// Tests for the shared utility layer: thread pool, RNG determinism,
// statistics, and table formatting.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bits.hpp"
#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace m3xu {
namespace {

TEST(Bits, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(12), 0xfffu);
  EXPECT_EQ(low_mask(64), ~std::uint64_t{0});
}

TEST(Bits, HighestBit) {
  EXPECT_EQ(highest_bit(0), -1);
  EXPECT_EQ(highest_bit(1), 0);
  EXPECT_EQ(highest_bit(0x800), 11);
  EXPECT_EQ(highest_bit(~std::uint64_t{0}), 63);
}

TEST(Bits, CeilDivRoundUp) {
  EXPECT_EQ(ceil_div(7, 4), 2u);
  EXPECT_EQ(ceil_div(8, 4), 2u);
  EXPECT_EQ(round_up(7, 4), 8u);
  EXPECT_EQ(round_up(8, 4), 8u);
}

TEST(Bits, FloatPunning) {
  EXPECT_EQ(bits_of(1.0f), 0x3f800000u);
  EXPECT_EQ(float_from_bits(0x40000000u), 2.0f);
  EXPECT_EQ(bits_of(1.0), 0x3ff0000000000000ull);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ThreadPool, HandlesEmptyAndSingle) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
  int count = 0;
  pool.parallel_for(1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, SingleThreadDegeneratesToSerial) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for(64, [&](std::size_t i) { order.push_back(i); });
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, WorkerExceptionRethrownOnCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(1'000,
                        [](std::size_t i) {
                          if (i == 417) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, FirstExceptionWinsAndSkipsRemainingWork) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  try {
    pool.parallel_for(100'000, [&](std::size_t) {
      executed.fetch_add(1);
      throw std::runtime_error("first");
    });
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  // The failed flag short-circuits whole chunks; far fewer than all
  // iterations should have run.
  EXPECT_LT(executed.load(), 100'000);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(
                   10, [](std::size_t) { throw std::logic_error("x"); }),
               std::logic_error);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, SerialPathPropagatesException) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(
                   5, [](std::size_t i) {
                     if (i == 3) throw std::out_of_range("serial");
                   }),
               std::out_of_range);
}

TEST(Check, ScopedHandlerTurnsFailureIntoException) {
  const ScopedCheckHandler guard(&throwing_check_failure_handler);
  try {
    M3XU_CHECK_MSG(1 + 1 == 3, "arithmetic is broken");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos);
    EXPECT_NE(what.find("arithmetic is broken"), std::string::npos);
  }
}

TEST(Check, PlainCheckOmitsMessage) {
  const ScopedCheckHandler guard(&throwing_check_failure_handler);
  try {
    M3XU_CHECK(false);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("false"), std::string::npos);
  }
}

TEST(Check, HandlerRestoredOnScopeExit) {
  {
    const ScopedCheckHandler guard(&throwing_check_failure_handler);
    EXPECT_THROW(M3XU_CHECK(false), CheckError);
  }
  // Back to the default abort handler.
  EXPECT_DEATH(M3XU_CHECK_MSG(false, "default path"), "default path");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1'000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const float v = rng.uniform(-2.0f, 3.0f);
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

TEST(Rng, AnyFiniteFloatIsFinite) {
  Rng rng(8);
  for (int i = 0; i < 100'000; ++i) {
    const float f = rng.any_finite_float();
    EXPECT_FALSE(std::isnan(f));
    EXPECT_FALSE(std::isinf(f));
  }
}

TEST(Rng, NextBelowDeterministicAndInRange) {
  Rng a(31), b(31);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t n = 1 + (i % 257);
    const std::uint64_t v = a.next_below(n);
    EXPECT_LT(v, n);
    EXPECT_EQ(v, b.next_below(n));
  }
  EXPECT_EQ(a.next_below(0), 0u);
  EXPECT_EQ(a.next_below(1), 0u);
}

TEST(Rng, NextBelowPowerOfTwoMatchesMaskedDraw) {
  // Power-of-two ranges take the mask fast path: bitwise identical to
  // masking the raw draw, so pre-existing fixed-seed sequences that
  // used po2 ranges are unchanged by the rejection-sampling fix.
  Rng a(77), b(77);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t n = std::uint64_t{1} << (i % 33);
    EXPECT_EQ(a.next_below(n), b.next_u64() & (n - 1));
  }
}

TEST(Rng, NextBelowHasNoModuloBias) {
  // n = 3 * 2^62: plain `next_u64() % n` would map [0, 2^64) onto
  // residues where values below 2^62 appear twice as often (the wrap
  // [3*2^62, 2^64) covers only them), i.e. ~50% of draws instead of the
  // uniform 1/3. Rejection sampling must restore ~1/3.
  const std::uint64_t n = 3ull << 62;
  const std::uint64_t third = 1ull << 62;
  Rng rng(123);
  int below = 0;
  const int trials = 30'000;
  for (int i = 0; i < trials; ++i) {
    below += rng.next_below(n) < third ? 1 : 0;
  }
  const double frac = static_cast<double>(below) / trials;
  EXPECT_NEAR(frac, 1.0 / 3.0, 0.02);  // biased modulo would give ~0.5
}

TEST(Rng, SeedAccessorRoundTrips) {
  EXPECT_EQ(Rng(42).seed(), 42u);
  EXPECT_EQ(Rng(0xdeadbeefull).seed(), 0xdeadbeefull);
}

TEST(Rng, SplitIsDeterministicPerStream) {
  const Rng root(42);
  Rng a = root.split(7);
  Rng b = root.split(7);
  for (int i = 0; i < 1'000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SplitStreamsDiverge) {
  const Rng root(42);
  Rng a = root.split(0);
  Rng b = root.split(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_EQ(same, 0);
  // A child stream also diverges from its parent.
  Rng parent(42);
  Rng child = Rng(42).split(0);
  same = 0;
  for (int i = 0; i < 100; ++i) same += parent.next_u64() == child.next_u64();
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitIndependentOfParentConsumption) {
  // split() is a pure function of (seed, stream): consuming the parent
  // must not change the child - the property per-tile retry streams in
  // the recovery ladder rely on.
  Rng fresh(1234);
  Rng consumed(1234);
  for (int i = 0; i < 500; ++i) consumed.next_u64();
  Rng a = fresh.split(3);
  Rng b = consumed.split(3);
  for (int i = 0; i < 1'000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_EQ(fresh.split(3).seed(), consumed.split(3).seed());
}

TEST(Rng, NormalHasPlausibleMoments) {
  Rng rng(9);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Stats, Summary) {
  const Summary s = summarize({1.0, 2.0, 4.0});
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 4.0);
  EXPECT_NEAR(s.mean, 7.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.geomean, 2.0, 1e-12);
  EXPECT_EQ(s.count, 3u);
}

TEST(Stats, EmptyAndZero) {
  EXPECT_EQ(summarize({}).count, 0u);
  EXPECT_EQ(summarize({0.0, 1.0}).geomean, 0.0);
}

TEST(Cli, ParsesFlagsAndDefaults) {
  const char* argv[] = {"prog", "--size=4096", "--verbose",
                        "--ratio=2.5", "--name=abc"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_TRUE(cli.has("size"));
  EXPECT_EQ(cli.get_int("size", 0), 4096);
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_FALSE(cli.get_bool("quiet", false));
  EXPECT_DOUBLE_EQ(cli.get_double("ratio", 0.0), 2.5);
  EXPECT_EQ(cli.get("name", ""), "abc");
  EXPECT_EQ(cli.get("other", "fallback"), "fallback");
}

TEST(Cli, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=1", "--c=yes", "--d=false"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_TRUE(cli.get_bool("b", false));
  EXPECT_TRUE(cli.get_bool("c", false));
  EXPECT_FALSE(cli.get_bool("d", true));
}

TEST(Table, FormatsNumbers) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::speedup(3.638), "3.64x");
  EXPECT_EQ(Table::pct(0.47), "47.0%");
}

TEST(Table, PrintsAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "23456"});
  // Just exercise the path; visual alignment checked by eye in benches.
  t.print(stderr);
}

}  // namespace
}  // namespace m3xu
