// Tests for the integer-semiring modes: exactness of the int8 baseline
// and the two-step int32-on-16-bit-multipliers composition (the
// integer instance of Observation 1).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "core/int_mode.hpp"

namespace m3xu::core {
namespace {

TEST(IntMode, Int8GemmIsExact) {
  Rng rng(701);
  const int m = 7, n = 6, k = 40;
  std::vector<std::int8_t> a(m * k), b(k * n);
  std::vector<std::int32_t> c(m * n, 3);
  for (auto& v : a) v = static_cast<std::int8_t>(rng.next_below(256) - 128);
  for (auto& v : b) v = static_cast<std::int8_t>(rng.next_below(256) - 128);
  IntEngine::gemm_s8(m, n, k, a.data(), k, b.data(), n, c.data(), n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      std::int64_t ref = 3;
      for (int kk = 0; kk < k; ++kk) {
        ref += static_cast<std::int64_t>(a[i * k + kk]) * b[kk * n + j];
      }
      EXPECT_EQ(c[i * n + j], ref);
    }
  }
}

TEST(IntMode, MultistepDotMatchesDirectInt64) {
  Rng rng(702);
  for (int trial = 0; trial < 200'000; ++trial) {
    const int k = 1 + static_cast<int>(rng.next_below(8));
    std::vector<std::int32_t> a(k), b(k);
    std::int64_t ref = 0;
    for (int i = 0; i < k; ++i) {
      // Bounded magnitudes keep the k-sum inside int64.
      a[i] = static_cast<std::int32_t>(rng.next_below(1u << 30)) -
             (1 << 29);
      b[i] = static_cast<std::int32_t>(rng.next_below(1u << 30)) -
             (1 << 29);
      ref += static_cast<std::int64_t>(a[i]) * b[i];
    }
    EXPECT_EQ(IntEngine::dot_s32_multistep(
                  {a.data(), a.size()}, {b.data(), b.size()}),
              ref);
  }
}

TEST(IntMode, MultistepHandlesSignBoundaries) {
  // The split's asymmetry (signed high half, unsigned low half) is the
  // subtle part: exercise INT32_MIN/MAX and sign flips exhaustively in
  // pairs.
  const std::int32_t cases[] = {0,
                                1,
                                -1,
                                0xffff,
                                0x10000,
                                -0x10000,
                                -0xffff,
                                std::numeric_limits<std::int32_t>::max(),
                                std::numeric_limits<std::int32_t>::min(),
                                0x7fff8000,
                                static_cast<std::int32_t>(0x80007fff)};
  for (std::int32_t x : cases) {
    for (std::int32_t y : cases) {
      const std::int32_t xv[] = {x};
      const std::int32_t yv[] = {y};
      EXPECT_EQ(IntEngine::dot_s32_multistep(xv, yv),
                static_cast<std::int64_t>(x) * y)
          << x << " * " << y;
    }
  }
}

TEST(IntMode, Int32GemmMatchesReference) {
  Rng rng(703);
  const int m = 5, n = 4, k = 16;
  std::vector<std::int32_t> a(m * k), b(k * n);
  std::vector<std::int64_t> c(m * n, -7);
  for (auto& v : a) {
    v = static_cast<std::int32_t>(rng.next_below(1u << 24)) - (1 << 23);
  }
  for (auto& v : b) {
    v = static_cast<std::int32_t>(rng.next_below(1u << 24)) - (1 << 23);
  }
  IntEngine::gemm_s32(m, n, k, a.data(), k, b.data(), n, c.data(), n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      std::int64_t ref = -7;
      for (int kk = 0; kk < k; ++kk) {
        ref += static_cast<std::int64_t>(a[i * k + kk]) * b[kk * n + j];
      }
      EXPECT_EQ(c[i * n + j], ref);
    }
  }
}

}  // namespace
}  // namespace m3xu::core
