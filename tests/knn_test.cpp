// Tests for the KNN case study: GEMM-based search vs brute force, the
// precision argument (FP16 products corrupt neighbors where M3XU FP32
// does not), and Fig-9 timing bands.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "knn/knn.hpp"
#include "knn/knn_timing.hpp"

namespace m3xu::knn {
namespace {

gemm::Matrix<float> random_points(int n, int d, std::uint64_t seed,
                                  float scale = 1.0f) {
  Rng rng(seed);
  gemm::Matrix<float> m(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) {
      m(i, j) = static_cast<float>(rng.normal()) * scale;
    }
  }
  return m;
}

TEST(KnnSearch, MatchesBruteForceReference) {
  const core::M3xuEngine engine;
  const auto q = random_points(40, 24, 101);
  const auto r = random_points(200, 24, 102);
  const KnnResult got =
      knn_search(q, r, 5, gemm::SgemmKernel::kM3xu, engine);
  const KnnResult ref = knn_reference(q, r, 5);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(got.indices[i], ref.indices[i]) << "query " << i;
  }
}

TEST(KnnSearch, DistancesAreSortedAndNonNegativeish) {
  const core::M3xuEngine engine;
  const auto q = random_points(20, 16, 103);
  const auto r = random_points(100, 16, 104);
  const KnnResult got =
      knn_search(q, r, 8, gemm::SgemmKernel::kM3xu, engine);
  for (const auto& row : got.distances) {
    for (std::size_t j = 1; j < row.size(); ++j) {
      EXPECT_LE(row[j - 1], row[j]);
    }
    // Squared distances may go slightly negative from cancellation in
    // the norm trick, but only at rounding scale.
    EXPECT_GT(row.front(), -1e-3f);
  }
}

TEST(KnnSearch, SelfIsOwnNearestNeighbor) {
  const core::M3xuEngine engine;
  const auto pts = random_points(64, 32, 105);
  const KnnResult got =
      knn_search(pts, pts, 1, gemm::SgemmKernel::kM3xu, engine);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(got.indices[i][0], i);
  }
}

TEST(KnnSearch, SimtAndM3xuAgree) {
  const core::M3xuEngine engine;
  const auto q = random_points(30, 64, 106);
  const auto r = random_points(300, 64, 107);
  const KnnResult a = knn_search(q, r, 4, gemm::SgemmKernel::kSimt, engine);
  const KnnResult b = knn_search(q, r, 4, gemm::SgemmKernel::kM3xu, engine);
  for (int i = 0; i < 30; ++i) EXPECT_EQ(a.indices[i], b.indices[i]);
}

TEST(KnnSearch, ChunkedEqualsUnchunked) {
  const core::M3xuEngine engine;
  const auto q = random_points(57, 20, 110);
  const auto r = random_points(190, 20, 111);
  const KnnResult whole =
      knn_search(q, r, 6, gemm::SgemmKernel::kM3xu, engine);
  // Force several uneven chunks (190 * 13 elements max -> chunk 13).
  const KnnResult chunked = knn_search_chunked(
      q, r, 6, gemm::SgemmKernel::kM3xu, engine, 190L * 13);
  for (int i = 0; i < 57; ++i) {
    EXPECT_EQ(chunked.indices[i], whole.indices[i]) << i;
    EXPECT_EQ(chunked.distances[i], whole.distances[i]) << i;
  }
}

TEST(KnnPrecision, SmallMagnitudeDataNeedsFp32) {
  // The paper's SVI-C4 argument: with extremely small input values the
  // reduced-precision path corrupts results while M3XU's exact FP32
  // keeps them. Emulate the FP16 path by rounding inputs to FP16
  // before the search (products then lose the discriminating bits).
  const core::M3xuEngine engine;
  // 1e-6-scale values sit deep in FP16's subnormal range (~4 effective
  // bits) while FP32 keeps full precision.
  auto q = random_points(24, 48, 108, /*scale=*/1e-6f);
  auto r = random_points(160, 48, 109, /*scale=*/1e-6f);
  const KnnResult ref = knn_reference(q, r, 3);
  const KnnResult m3xu =
      knn_search(q, r, 3, gemm::SgemmKernel::kM3xu, engine);
  int m3xu_wrong = 0;
  for (int i = 0; i < 24; ++i) {
    if (m3xu.indices[i] != ref.indices[i]) ++m3xu_wrong;
  }
  EXPECT_EQ(m3xu_wrong, 0);
  // FP16-rounded inputs: values near 1e-5 collapse in precision (FP16
  // subnormal quantum is ~6e-8, leaving ~7 significant bits).
  gemm::Matrix<float> qh = q, rh = r;
  for (int i = 0; i < qh.rows(); ++i) {
    for (int j = 0; j < qh.cols(); ++j) {
      qh(i, j) = fp::Half::from_float(qh(i, j)).to_float();
    }
  }
  for (int i = 0; i < rh.rows(); ++i) {
    for (int j = 0; j < rh.cols(); ++j) {
      rh(i, j) = fp::Half::from_float(rh(i, j)).to_float();
    }
  }
  const KnnResult fp16 =
      knn_search(qh, rh, 3, gemm::SgemmKernel::kSimt, engine);
  int fp16_wrong = 0;
  for (int i = 0; i < 24; ++i) {
    if (fp16.indices[i] != ref.indices[i]) ++fp16_wrong;
  }
  EXPECT_GT(fp16_wrong, 0);
}

TEST(Fig9, SpeedupGrowsWithDimensionAndTopsNear1p8) {
  const sim::GpuSim gpu(sim::GpuConfig::a100());
  auto speedup = [&](long size, long d) {
    return time_knn(gpu, size, size, d, 16, false).seconds /
           time_knn(gpu, size, size, d, 16, true).seconds;
  };
  const double low = speedup(8192, 512);
  const double high = speedup(65536, 4096);
  EXPECT_GT(low, 1.0);
  EXPECT_LT(low, high);
  EXPECT_GT(high, 1.6);
  EXPECT_LT(high, 2.0);  // paper: tops at ~1.8x
}

TEST(Fig9, GemmFractionDrivesTheGradient) {
  const sim::GpuSim gpu(sim::GpuConfig::a100());
  const double f_low = time_knn(gpu, 8192, 8192, 512, 16, false)
                           .gemm_fraction();
  const double f_high = time_knn(gpu, 65536, 65536, 4096, 16, false)
                            .gemm_fraction();
  EXPECT_LT(f_low, f_high);
  EXPECT_GT(f_high, 0.5);
}

TEST(Fig9, LargerKCostsMoreSelectionTime) {
  const sim::GpuSim gpu(sim::GpuConfig::a100());
  const double k8 = time_knn(gpu, 16384, 16384, 1024, 8, false).seconds;
  const double k16 = time_knn(gpu, 16384, 16384, 1024, 16, false).seconds;
  const double k64 = time_knn(gpu, 16384, 16384, 1024, 64, false).seconds;
  EXPECT_LT(k8, k16);
  EXPECT_LT(k16, k64);
  // GEMM time is k-independent, so the speedup shrinks as k grows.
  auto speedup = [&](int k) {
    return time_knn(gpu, 16384, 16384, 1024, k, false).seconds /
           time_knn(gpu, 16384, 16384, 1024, k, true).seconds;
  };
  EXPECT_GT(speedup(8), speedup(64));
}

}  // namespace
}  // namespace m3xu::knn
