// Tests for the DNN training case study: layer tables, conv -> GEMM
// lowering identities, and Fig-7 timing bands.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "dnn/conv.hpp"
#include "dnn/network.hpp"
#include "dnn/training_time.hpp"

namespace m3xu::dnn {
namespace {

Tensor4 random_tensor(int n, int c, int h, int w, std::uint64_t seed) {
  Tensor4 t(n, c, h, w);
  Rng rng(seed);
  for (auto& v : t.data) v = rng.uniform(-1.0f, 1.0f);
  return t;
}

WeightMatrix random_weights(const ConvLayer& conv, std::uint64_t seed) {
  WeightMatrix w(conv.c_out, conv.c_in * conv.kh * conv.kw);
  Rng rng(seed);
  for (int i = 0; i < w.rows(); ++i) {
    for (int j = 0; j < w.cols(); ++j) w(i, j) = rng.uniform(-0.5f, 0.5f);
  }
  return w;
}

TEST(ConvFunctional, Im2colShapesMatchLowering) {
  const ConvLayer conv{3, 8, 10, 12, 3, 3, 1, 1};
  const Tensor4 x = random_tensor(2, 3, 10, 12, 401);
  const gemm::Matrix<float> cols = im2col(x, conv);
  const GemmShape shape = forward_gemm(conv, 2);
  EXPECT_EQ(cols.rows(), shape.m);
  EXPECT_EQ(cols.cols(), shape.k);
}

TEST(ConvFunctional, GemmConvMatchesDirectReference) {
  const core::M3xuEngine engine;
  for (const ConvLayer conv :
       {ConvLayer{3, 6, 9, 9, 3, 3, 1, 1}, ConvLayer{4, 8, 12, 8, 5, 5, 2, 2},
        ConvLayer{2, 4, 7, 7, 1, 1, 1, 0}}) {
    const Tensor4 x = random_tensor(2, conv.c_in, conv.h, conv.w, 402);
    const WeightMatrix w = random_weights(conv, 403);
    const Tensor4 ref = conv2d_reference(x, w, conv);
    const Tensor4 got =
        conv2d_gemm(x, w, conv, ConvMath::kM3xuFp32, engine);
    ASSERT_EQ(got.data.size(), ref.data.size());
    for (std::size_t i = 0; i < ref.data.size(); ++i) {
      EXPECT_NEAR(got.data[i], ref.data[i], 2e-5) << i;
    }
  }
}

TEST(ConvFunctional, Fp16ForwardLosesPrecisionM3xuDoesNot) {
  const core::M3xuEngine engine;
  const ConvLayer conv{8, 8, 8, 8, 3, 3, 1, 1};
  const Tensor4 x = random_tensor(1, 8, 8, 8, 404);
  const WeightMatrix w = random_weights(conv, 405);
  const Tensor4 ref = conv2d_reference(x, w, conv);
  const Tensor4 m3 = conv2d_gemm(x, w, conv, ConvMath::kM3xuFp32, engine);
  const Tensor4 h16 = conv2d_gemm(x, w, conv, ConvMath::kTensorFp16, engine);
  double err_m3 = 0.0, err_h16 = 0.0;
  for (std::size_t i = 0; i < ref.data.size(); ++i) {
    err_m3 += std::fabs(m3.data[i] - ref.data[i]);
    err_h16 += std::fabs(h16.data[i] - ref.data[i]);
  }
  EXPECT_LT(err_m3, err_h16 / 50.0);  // FP16 inputs lose mantissa bits
}

TEST(ConvFunctional, StridedConvOutputDims) {
  const ConvLayer conv{1, 1, 11, 11, 3, 3, 2, 0};
  const Tensor4 x = random_tensor(1, 1, 11, 11, 406);
  WeightMatrix w(1, 9);
  w.fill(1.0f);
  const Tensor4 out = conv2d_reference(x, w, conv);
  EXPECT_EQ(out.h, 5);
  EXPECT_EQ(out.w, 5);
  // A sum-filter at (0,0) equals the top-left 3x3 window sum.
  float expect = 0.0f;
  for (int y = 0; y < 3; ++y) {
    for (int xx = 0; xx < 3; ++xx) expect += x.at(0, 0, y, xx);
  }
  EXPECT_NEAR(out.at(0, 0, 0, 0), expect, 1e-6);
}

TEST(ConvLowering, OutputDims) {
  const ConvLayer c{3, 64, 224, 224, 11, 11, 4, 2};
  EXPECT_EQ(c.out_h(), 55);
  EXPECT_EQ(c.out_w(), 55);
  const ConvLayer same{64, 64, 56, 56, 3, 3, 1, 1};
  EXPECT_EQ(same.out_h(), 56);
}

TEST(ConvLowering, GemmShapes) {
  const ConvLayer c{64, 128, 56, 56, 3, 3, 1, 1};
  const int batch = 8;
  const GemmShape f = forward_gemm(c, batch);
  EXPECT_EQ(f.m, 8L * 56 * 56);
  EXPECT_EQ(f.n, 128);
  EXPECT_EQ(f.k, 64L * 9);
  // dgrad and wgrad move the same MACs as forward (same tensor sizes).
  const GemmShape d = dgrad_gemm(c, batch);
  const GemmShape w = wgrad_gemm(c, batch);
  EXPECT_EQ(d.m, 8L * 56 * 56);
  EXPECT_EQ(d.n, 64);
  EXPECT_EQ(w.m, 128);
  EXPECT_EQ(w.n, 64L * 9);
  EXPECT_EQ(w.k, 8L * 56 * 56);
  EXPECT_DOUBLE_EQ(f.flops(), w.flops());
}

TEST(ConvLowering, FcShapes) {
  const FcLayer f{4096, 1000};
  EXPECT_EQ(forward_gemm(f, 32).m, 32);
  EXPECT_EQ(forward_gemm(f, 32).n, 1000);
  EXPECT_EQ(dgrad_gemm(f, 32).n, 4096);
  EXPECT_EQ(wgrad_gemm(f, 32).k, 32);
}

TEST(Networks, LayerInventories) {
  const Network a = alexnet(32);
  const Network v = vgg16(32);
  const Network r = resnet18(32);
  int a_convs = 0, v_convs = 0, r_convs = 0;
  for (const auto& l : a.layers) a_convs += l.kind == Layer::Kind::kConv;
  for (const auto& l : v.layers) v_convs += l.kind == Layer::Kind::kConv;
  for (const auto& l : r.layers) r_convs += l.kind == Layer::Kind::kConv;
  EXPECT_EQ(a_convs, 5);
  EXPECT_EQ(v_convs, 13);
  EXPECT_EQ(r_convs, 17);  // stem + 8 blocks x 2
}

TEST(Networks, VggForwardFlopsInKnownRange) {
  // VGG-16 forward is ~15.5 GMACs = ~31 GFLOPs per image.
  const Network v = vgg16(1);
  double flops = 0.0;
  for (const auto& l : v.layers) {
    if (l.kind == Layer::Kind::kConv) flops += forward_gemm(l.conv, 1).flops();
    if (l.kind == Layer::Kind::kFc) flops += forward_gemm(l.fc, 1).flops();
  }
  EXPECT_GT(flops, 28e9);
  EXPECT_LT(flops, 34e9);
}

TEST(Networks, ResNet50Census) {
  const Network r50 = resnet50(1);
  int convs = 0;
  for (const auto& l : r50.layers) convs += l.kind == Layer::Kind::kConv;
  EXPECT_EQ(convs, 1 + 3 * (3 + 4 + 6 + 3));  // stem + bottlenecks
  const FlopCensus c = count_flops(r50);
  // ~3.5 GMACs forward per image (projection shortcuts not modeled).
  EXPECT_GT(c.forward, 6.5e9);
  EXPECT_LT(c.forward, 9.5e9);
  // Backward moves ~2x the forward MACs (slightly more: the dgrad of a
  // strided conv spans the larger input resolution).
  EXPECT_GT(c.backward / c.forward, 2.0);
  EXPECT_LT(c.backward / c.forward, 2.3);
  // ~23M learnable parameters without the shortcut projections.
  EXPECT_GT(c.parameters, 20'000'000);
  EXPECT_LT(c.parameters, 27'000'000);
}

TEST(Networks, CensusScalesWithBatch) {
  const FlopCensus b1 = count_flops(resnet18(1));
  const FlopCensus b8 = count_flops(resnet18(8));
  EXPECT_NEAR(b8.forward / b1.forward, 8.0, 0.01);
  EXPECT_EQ(b1.parameters, b8.parameters);  // weights don't scale
}

TEST(Networks, AlexNetParameterCount) {
  // AlexNet: ~61M parameters, dominated by the FC layers.
  const FlopCensus c = count_flops(alexnet(1));
  EXPECT_GT(c.parameters, 55'000'000);
  EXPECT_LT(c.parameters, 65'000'000);
}

TEST(Fig7Extended, ResNet50BackwardSpeedupHolds) {
  // The paper's Fig 7 uses ResNet-18-class models; the mechanism must
  // hold unchanged on the deeper bottleneck network.
  const sim::GpuSim gpu(sim::GpuConfig::a100());
  const Network net = resnet50(16);
  const IterationTime base =
      time_iteration(gpu, net, TrainingMode::kMixedPrecision, 0.40);
  const IterationTime m3 =
      time_iteration(gpu, net, TrainingMode::kM3xu, 0.40);
  const double bwd = base.backward_seconds / m3.backward_seconds;
  EXPECT_GT(bwd, 2.5);
  EXPECT_LT(bwd, 4.0);
}

TEST(Fig7, BackwardSpeedupNear3p6) {
  const sim::GpuSim gpu(sim::GpuConfig::a100());
  for (const Network& net : {alexnet(32), vgg16(32), resnet18(32)}) {
    const double share = paper_backward_share(net.name);
    const IterationTime base =
        time_iteration(gpu, net, TrainingMode::kMixedPrecision, share);
    const IterationTime m3 =
        time_iteration(gpu, net, TrainingMode::kM3xu, share);
    const double bwd = base.backward_seconds / m3.backward_seconds;
    EXPECT_GT(bwd, 2.8) << net.name;  // paper: 3.6x
    EXPECT_LT(bwd, 4.0) << net.name;
    // Calibration holds: the baseline backward share matches the paper.
    EXPECT_NEAR(base.backward_share(), share, 1e-6) << net.name;
    // Forward and framework time are identical across modes.
    EXPECT_DOUBLE_EQ(base.forward_seconds, m3.forward_seconds);
    EXPECT_DOUBLE_EQ(base.framework_seconds, m3.framework_seconds);
  }
}

TEST(Fig7, EndToEndSpeedupBand) {
  const sim::GpuSim gpu(sim::GpuConfig::a100());
  double product = 1.0;
  int count = 0;
  for (const Network& net : {alexnet(32), vgg16(32), resnet18(32)}) {
    const double share = paper_backward_share(net.name);
    const double base =
        time_iteration(gpu, net, TrainingMode::kMixedPrecision, share)
            .total();
    const double m3 =
        time_iteration(gpu, net, TrainingMode::kM3xu, share).total();
    product *= base / m3;
    ++count;
    EXPECT_GT(base / m3, 1.2) << net.name;
    EXPECT_LT(base / m3, 1.8) << net.name;
  }
  const double geomean = std::pow(product, 1.0 / count);
  EXPECT_GT(geomean, 1.3);  // paper: 1.65x (see EXPERIMENTS.md)
}

TEST(Fig7, M3xuNeverSlower) {
  const sim::GpuSim gpu(sim::GpuConfig::a100());
  const Network net = resnet18(16);
  const double share = paper_backward_share(net.name);
  EXPECT_LE(time_iteration(gpu, net, TrainingMode::kM3xu, share).total(),
            time_iteration(gpu, net, TrainingMode::kMixedPrecision, share)
                .total());
}

}  // namespace
}  // namespace m3xu::dnn
