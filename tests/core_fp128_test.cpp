// Tests for the FP128 composition mode (SIV-C's far design point):
// correctly rounded products against the host's binary128 soft-float,
// across part widths.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "core/fp128_mode.hpp"

namespace m3xu::core {
namespace {

bool q_equal(__float128 a, __float128 b) {
  return std::memcmp(&a, &b, 16) == 0;
}

__float128 scale_by_pow2(__float128 v, int e) {
  // Scale by 2^e without libquadmath.
  __float128 s = 1;
  const __float128 two = e >= 0 ? 2 : 0.5;
  int n = e >= 0 ? e : -e;
  while (n--) s *= two;
  return v * s;
}

__float128 random_q(Rng& rng) {
  // Full 113-bit significands, exponents within the supported range.
  const __float128 hi = static_cast<__float128>(rng.next_double() * 2 - 1);
  const __float128 lo =
      static_cast<__float128>(rng.next_double() * 2 - 1) * 1e-17;
  const int e = static_cast<int>(rng.next_below(40)) - 20;
  return scale_by_pow2(hi + lo, e);
}

class PartWidths : public ::testing::TestWithParam<int> {};

TEST_P(PartWidths, SingleProductsAreCorrectlyRounded) {
  const Fp128Engine engine(GetParam());
  Rng rng(901);
  for (int i = 0; i < 5'000; ++i) {
    const __float128 a = random_q(rng);
    const __float128 b = random_q(rng);
    const __float128 av[] = {a};
    const __float128 bv[] = {b};
    const __float128 got = engine.dot(av, bv, 0);
    // The host's __float128 multiply is correctly rounded binary128.
    EXPECT_TRUE(q_equal(got, a * b))
        << static_cast<double>(a) << " * " << static_cast<double>(b);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, PartWidths,
                         ::testing::Values(4, 8, 13, 16, 23, 28),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param);
                         });

TEST(Fp128Mode, PartAndStepCounts) {
  EXPECT_EQ(Fp128Engine(28).parts(), 5);
  EXPECT_EQ(Fp128Engine(28).steps(), 25);
  EXPECT_EQ(Fp128Engine(16).parts(), 8);
  EXPECT_EQ(Fp128Engine(16).steps(), 64);
  EXPECT_EQ(Fp128Engine(4).parts(), 29);
}

TEST(Fp128Mode, DotWithAccumulateSingleRounding) {
  // The dot's single rounding is at least as accurate as the host's
  // sequential FMA-free evaluation; on exactly representable data it
  // is exact.
  const Fp128Engine engine(28);
  Rng rng(902);
  for (int trial = 0; trial < 2'000; ++trial) {
    std::vector<__float128> a(6), b(6);
    __float128 seq = 0;
    for (int i = 0; i < 6; ++i) {
      // Small integers: all arithmetic exact.
      a[i] = static_cast<__float128>(
          static_cast<double>(rng.next_below(2001)) - 1000.0);
      b[i] = static_cast<__float128>(
          static_cast<double>(rng.next_below(2001)) - 1000.0);
      seq += a[i] * b[i];
    }
    const __float128 c = static_cast<__float128>(
        static_cast<double>(rng.next_below(2001)) - 1000.0);
    seq += c;
    EXPECT_TRUE(q_equal(engine.dot({a.data(), a.size()},
                                   {b.data(), b.size()}, c),
                        seq));
  }
}

TEST(Fp128Mode, ResolvesBeyondDoublePrecision) {
  // (1 + 2^-100) * 1 must keep the 2^-100 term - far beyond FP64.
  __float128 tiny = 1;
  for (int i = 0; i < 100; ++i) tiny *= 0.5;
  const __float128 a = 1 + tiny;
  const Fp128Engine engine(28);
  const __float128 av[] = {a};
  const __float128 bv[] = {1};
  const __float128 got = engine.dot(av, bv, 0);
  EXPECT_TRUE(q_equal(got, a));
  EXPECT_FALSE(q_equal(got, __float128(1)));
}

TEST(Fp128Mode, Specials) {
  const Fp128Engine engine(28);
  const __float128 inf = __builtin_huge_valq();
  const __float128 one = 1;
  const __float128 zero = 0;
  {
    const __float128 av[] = {inf};
    const __float128 bv[] = {one};
    const __float128 r = engine.dot(av, bv, 0);
    EXPECT_TRUE(q_equal(r, inf));
  }
  {
    const __float128 av[] = {inf};
    const __float128 bv[] = {zero};
    const __float128 r = engine.dot(av, bv, 0);
    EXPECT_TRUE(r != r);  // NaN
  }
  {
    const __float128 av[] = {inf, inf};
    const __float128 bv[] = {one, -one};
    const __float128 r = engine.dot(av, bv, 0);
    EXPECT_TRUE(r != r);  // +Inf + -Inf
  }
}

TEST(Fp128Mode, WidthsAgreeWithEachOther) {
  Rng rng(903);
  const Fp128Engine e1(28), e2(8);
  for (int i = 0; i < 2'000; ++i) {
    std::vector<__float128> a(4), b(4);
    for (int k = 0; k < 4; ++k) {
      a[k] = random_q(rng);
      b[k] = random_q(rng);
    }
    const __float128 r1 = e1.dot({a.data(), 4}, {b.data(), 4}, 0);
    const __float128 r2 = e2.dot({a.data(), 4}, {b.data(), 4}, 0);
    EXPECT_TRUE(q_equal(r1, r2));  // both are the single-rounded sum
  }
}

}  // namespace
}  // namespace m3xu::core
