// Tests for the kernel-builder traffic contracts via the program
// census, and for the trace-dump tooling itself.
#include <gtest/gtest.h>

#include "sim/eval_kernels.hpp"
#include "sim/trace_dump.hpp"

namespace m3xu::sim {
namespace {

GpuConfig cfg() { return GpuConfig::a100(); }

TEST(Census, CountsSections) {
  CtaProgram p;
  p.warps = 4;
  p.iterations = 10;
  p.prologue.push_back(Instr::ldg(100.0, 0));
  p.body.push_back(Instr::ldg(50.0, 1));
  p.body.push_back(Instr::wait_group(0));
  p.body.push_back(Instr::bar());
  p.body.push_back(Instr::mma(8));
  p.body.push_back(Instr::ffma(32));
  p.epilogue.push_back(Instr::stg(200.0));
  const ProgramCensus c = census(p);
  EXPECT_EQ(c.ldg, 1 + 10);
  EXPECT_EQ(c.mma, 10);
  EXPECT_EQ(c.ffma_warp, 320);
  EXPECT_EQ(c.barriers, 10);
  EXPECT_EQ(c.stg, 1);
  EXPECT_DOUBLE_EQ(c.ldg_bytes, 100.0 + 10 * 50.0);
  EXPECT_DOUBLE_EQ(c.stg_bytes, 200.0);
}

TEST(Census, TensorGemmTrafficContract) {
  // Per-warp traffic of the M3XU FP32 kernel: A and B panels of the
  // CTA tile, every mainloop iteration, split across 8 warps; FP32
  // elements are 4 bytes.
  TensorGemmParams p{kind_m3xu_fp32(cfg()), 1, 0, false, 1.0};
  const KernelLaunch launch = build_tensor_gemm(cfg(), 8192, 8192, 8192, p);
  const ProgramCensus c = census(launch.program);
  // 256x128 tile, cta_k = 16, 512 iterations.
  const double expected_per_warp =
      (256.0 + 128.0) * 16.0 * 4.0 / 8.0 * (8192.0 / 16.0);
  // The prologue preloads (stages-1) iterations that the body also
  // counts at the tail; allow that small excess.
  EXPECT_NEAR(c.ldg_bytes, expected_per_warp, expected_per_warp * 0.01);
  // MMA instructions per warp: warp tile 64x64, inst 16x8x8, k=8192.
  EXPECT_EQ(c.mma, (64 / 16) * (64 / 8) * (8192 / 8));
}

TEST(Census, Fp16VsM3xuInstructionRatio) {
  TensorGemmParams h{kind_fp16(cfg()), 1, 0, false, 1.0};
  TensorGemmParams m{kind_m3xu_fp32(cfg()), 1, 0, false, 1.0};
  const ProgramCensus ch =
      census(build_tensor_gemm(cfg(), 4096, 4096, 4096, h).program);
  const ProgramCensus cm =
      census(build_tensor_gemm(cfg(), 4096, 4096, 4096, m).program);
  // SV-B contract at trace level: 2x instructions, 2x bytes.
  EXPECT_EQ(cm.mma, 2 * ch.mma);
  EXPECT_NEAR(cm.ldg_bytes / ch.ldg_bytes, 2.0, 0.02);  // prologue preload skew
}

TEST(Census, EmulationKernelsCarryDecoupleWork) {
  TensorGemmParams p{kind_tf32(cfg()), 3, 96, false, 1.0};
  const ProgramCensus c =
      census(build_tensor_gemm(cfg(), 4096, 4096, 4096, p).program);
  EXPECT_GT(c.alu_warp, 0);
  TensorGemmParams m{kind_m3xu_fp32(cfg()), 1, 0, false, 1.0};
  const ProgramCensus cm =
      census(build_tensor_gemm(cfg(), 4096, 4096, 4096, m).program);
  EXPECT_EQ(cm.alu_warp, 0);  // native FP32 needs no decoupling
}

TEST(Dump, RendersEverySection) {
  TensorGemmParams p{kind_m3xu_fp32(cfg()), 1, 0, true, 1.0};
  const KernelLaunch launch = build_tensor_gemm(cfg(), 1024, 1024, 1024, p);
  const std::string text = dump(launch.program);
  EXPECT_NE(text.find("prologue"), std::string::npos);
  EXPECT_NE(text.find("body"), std::string::npos);
  EXPECT_NE(text.find("epilogue"), std::string::npos);
  EXPECT_NE(text.find("mma"), std::string::npos);
  EXPECT_NE(text.find("ldg"), std::string::npos);
  EXPECT_NE(text.find("bar"), std::string::npos);
}

TEST(Census, SimtGemmIsFfmaDominated) {
  const KernelLaunch launch =
      build_simt_gemm(cfg(), 4096, 4096, 4096, SimtMath::kFp32);
  const ProgramCensus c = census(launch.program);
  EXPECT_EQ(c.mma, 0);
  // Total FMA warp-instructions across the CTA: per warp count x 8
  // warps must equal tile MACs / 32 lanes.
  const double tile_macs = 128.0 * 128.0 * 4096.0;
  EXPECT_NEAR(c.ffma_warp * 8.0, tile_macs / 32.0, tile_macs / 32.0 * 0.01);
}

TEST(Census, StreamingKernelBytesMatchRequest) {
  const KernelLaunch launch =
      build_streaming_kernel(cfg(), 1e8, 5e7, 0.0);
  const ProgramCensus c = census(launch.program);
  EXPECT_NEAR(c.ldg_bytes * launch.program.warps * launch.grid_ctas, 1e8,
              1e8 * 0.01);
  EXPECT_NEAR(c.stg_bytes * launch.program.warps * launch.grid_ctas, 5e7,
              5e7 * 0.01);
}

}  // namespace
}  // namespace m3xu::sim
