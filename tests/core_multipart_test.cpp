// Tests for the generalized multi-part engine (SIV-C design space):
// arbitrary base-multiplier widths composing FP32/FP64 arithmetic.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "core/multi_part.hpp"
#include "core/mxu.hpp"
#include "fp/exact_accumulator.hpp"

namespace m3xu::core {
namespace {

MultiPartConfig make_config(fp::FloatFormat fmt, int part_bits,
                            bool per_step = true) {
  MultiPartConfig c;
  c.format = fmt;
  c.part_bits = part_bits;
  c.accum_prec = fmt == fp::kFp64 ? 53 : 48;
  c.per_step_rounding = per_step;
  return c;
}

double dot1(const MultiPartEngine& e, double a, double b, double c) {
  const double av[] = {a};
  const double bv[] = {b};
  return e.dot(av, bv, c);
}

TEST(MultiPart, PartAndStepCounts) {
  EXPECT_EQ(MultiPartEngine(make_config(fp::kFp32, 12)).parts(), 2);
  EXPECT_EQ(MultiPartEngine(make_config(fp::kFp32, 12)).steps(), 4);
  EXPECT_EQ(MultiPartEngine(make_config(fp::kFp32, 8)).parts(), 3);
  EXPECT_EQ(MultiPartEngine(make_config(fp::kFp32, 8)).steps(), 9);
  EXPECT_EQ(MultiPartEngine(make_config(fp::kFp64, 27)).parts(), 2);
  EXPECT_EQ(MultiPartEngine(make_config(fp::kFp64, 12)).parts(), 5);
  EXPECT_EQ(MultiPartEngine(make_config(fp::kFp64, 12)).steps(), 25);
  EXPECT_EQ(MultiPartEngine(make_config(fp::kFp16, 12)).parts(), 1);
}

// The design-space invariant: ANY part width >= 2 yields correctly
// rounded products, because the split is exact and the partial products
// are exact.
class PartWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(PartWidthSweep, Fp32ProductsCorrectlyRounded) {
  const MultiPartEngine engine(
      make_config(fp::kFp32, GetParam(), /*per_step=*/false));
  Rng rng(61);
  for (int i = 0; i < 50'000; ++i) {
    const float a = rng.scaled_float();
    const float b = rng.scaled_float();
    const double got = dot1(engine, a, b, 0.0);
    const float expected =
        static_cast<float>(static_cast<double>(a) * static_cast<double>(b));
    EXPECT_EQ(got, static_cast<double>(expected)) << a << " * " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, PartWidthSweep,
                         ::testing::Values(4, 6, 8, 10, 12, 16, 24),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param);
                         });

class Fp64PartWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(Fp64PartWidthSweep, Fp64ProductsCorrectlyRounded) {
  const MultiPartEngine engine(
      make_config(fp::kFp64, GetParam(), /*per_step=*/false));
  Rng rng(62);
  for (int i = 0; i < 20'000; ++i) {
    const double a = std::ldexp(rng.next_double() * 2.0 - 1.0,
                                static_cast<int>(rng.next_below(20)) - 10);
    const double b = std::ldexp(rng.next_double() * 2.0 - 1.0,
                                static_cast<int>(rng.next_below(20)) - 10);
    EXPECT_EQ(bits_of(dot1(engine, a, b, 0.0)), bits_of(a * b));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, Fp64PartWidthSweep,
                         ::testing::Values(12, 14, 20, 27, 28),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param);
                         });

TEST(MultiPart, MatchesM3xuEnginePerInstruction) {
  // The S=2 / 12-bit instance IS the M3XU FP32 mode: with a single
  // rounding per instruction the two implementations agree bit-exactly.
  const MultiPartEngine mp(make_config(fp::kFp32, 12, /*per_step=*/false));
  M3xuConfig cfg;
  cfg.per_step_rounding = false;
  const M3xuEngine m3xu(cfg);
  Rng rng(63);
  for (int trial = 0; trial < 20'000; ++trial) {
    std::array<float, 8> af{}, bf{};
    std::array<double, 8> ad{}, bd{};
    for (int k = 0; k < 8; ++k) {
      af[k] = rng.scaled_float();
      bf[k] = rng.scaled_float();
      ad[k] = af[k];
      bd[k] = bf[k];
    }
    const float c = rng.scaled_float();
    const float via_m3xu = m3xu.mma_dot_fp32(af, bf, c);
    const double via_mp = mp.dot(ad, bd, static_cast<double>(c));
    EXPECT_EQ(static_cast<double>(via_m3xu), via_mp);
  }
}

TEST(MultiPart, DotWithAccumulateMatchesOracle) {
  const MultiPartEngine engine(make_config(fp::kFp32, 12, false));
  Rng rng(64);
  for (int trial = 0; trial < 20'000; ++trial) {
    std::array<double, 8> a{}, b{};
    fp::ExactAccumulator oracle;
    for (int k = 0; k < 8; ++k) {
      const float fa = rng.scaled_float();
      const float fb = rng.scaled_float();
      a[k] = fa;
      b[k] = fb;
      oracle.add_product(fp::unpack(fa), fp::unpack(fb));
    }
    const float c = rng.scaled_float();
    oracle.add_double(c);
    // round to the 48-bit register, then to FP32 on writeback.
    const float expected = fp::pack_to_float(oracle.round_to_precision(48));
    EXPECT_EQ(engine.dot(a, b, c), static_cast<double>(expected));
  }
}

TEST(MultiPart, SubnormalFlushAndSpecials) {
  const MultiPartEngine engine(make_config(fp::kFp32, 12));
  const double sub = static_cast<double>(float_from_bits(0x00400000));
  EXPECT_EQ(dot1(engine, sub, 2.0, 0.0), 0.0);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(dot1(engine, inf, 2.0, 0.0), inf);
  EXPECT_EQ(dot1(engine, inf, -2.0, 0.0), -inf);
  EXPECT_TRUE(std::isnan(dot1(engine, inf, 0.0, 0.0)));
  EXPECT_TRUE(std::isnan(
      dot1(engine, std::numeric_limits<double>::quiet_NaN(), 1.0, 0.0)));
  EXPECT_EQ(dot1(engine, inf, inf, 0.0), inf);
}

TEST(MultiPart, GemmChunksLikeRepeatedDots) {
  const MultiPartEngine engine(make_config(fp::kFp32, 12));
  Rng rng(65);
  const int m = 4, n = 3, k = 11, kc = 4;
  std::vector<double> a(m * k), b(k * n), c(m * n), c2;
  for (auto& v : a) v = rng.scaled_float();
  for (auto& v : b) v = rng.scaled_float();
  for (auto& v : c) v = rng.scaled_float();
  c2 = c;
  engine.gemm(m, n, k, kc, a.data(), k, b.data(), n, c.data(), n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = c2[i * n + j];
      for (int k0 = 0; k0 < k; k0 += kc) {
        const int cnt = std::min(kc, k - k0);
        std::vector<double> av(cnt), bv(cnt);
        for (int kk = 0; kk < cnt; ++kk) {
          av[kk] = a[i * k + k0 + kk];
          bv[kk] = b[(k0 + kk) * n + j];
        }
        acc = engine.dot({av.data(), av.size()}, {bv.data(), bv.size()}, acc);
      }
      EXPECT_EQ(c[i * n + j], acc);
    }
  }
}

TEST(MultiPart, Fp16FormatSinglePartPassthrough) {
  // With part_bits >= sig_bits the engine degenerates to a one-step
  // unit; FP16-format inputs multiply exactly.
  const MultiPartEngine engine(make_config(fp::kFp16, 12));
  EXPECT_EQ(engine.parts(), 1);
  EXPECT_EQ(dot1(engine, 1.5, 2.5, 0.0), 3.75);
}

}  // namespace
}  // namespace m3xu::core
