// Tests for the packed-operand fast path: the packed/prepacked engine
// GEMMs must be bit-identical to the per-dot route on random sweeps,
// special values, and with a fault injector attached (same sites, same
// opportunity order, same injected flips); plus the 64-bit indexing
// regression for leading dimensions whose virtual index crosses 2^31.
#include <gtest/gtest.h>

#include <sys/mman.h>

#include <complex>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "core/mxu.hpp"
#include "core/packed_panel.hpp"
#include "fault/injector.hpp"

namespace m3xu::core {
namespace {

std::vector<float> random_buffer(int rows, int cols, int ld, Rng& rng,
                                 bool benign) {
  std::vector<float> v(static_cast<std::size_t>(rows) * ld, 0.0f);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      v[static_cast<std::size_t>(i) * ld + j] =
          benign ? rng.scaled_float() : rng.any_finite_float();
    }
  }
  return v;
}

std::vector<std::complex<float>> random_cbuffer(int rows, int cols, int ld,
                                                Rng& rng, bool benign) {
  std::vector<std::complex<float>> v(static_cast<std::size_t>(rows) * ld);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      v[static_cast<std::size_t>(i) * ld + j] =
          benign ? std::complex<float>(rng.scaled_float(), rng.scaled_float())
                 : std::complex<float>(rng.any_finite_float(),
                                       rng.any_finite_float());
    }
  }
  return v;
}

/// Sprinkles Inf/NaN/zero/subnormal values over a buffer.
void add_specials(std::vector<float>& v, Rng& rng, int count) {
  static const float kSpecials[] = {
      std::numeric_limits<float>::infinity(),
      -std::numeric_limits<float>::infinity(),
      std::numeric_limits<float>::quiet_NaN(),
      0.0f,
      -0.0f,
      std::numeric_limits<float>::denorm_min(),
      -1.17549421e-38f,  // largest subnormal, negated
  };
  for (int i = 0; i < count; ++i) {
    v[rng.next_below(v.size())] = kSpecials[rng.next_below(7)];
  }
}

void expect_bitwise_equal(const std::vector<float>& x,
                          const std::vector<float>& y) {
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_EQ(bits_of(x[i]), bits_of(y[i])) << "element " << i;
  }
}

void expect_bitwise_equal(const std::vector<std::complex<float>>& x,
                          const std::vector<std::complex<float>>& y) {
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_EQ(bits_of(x[i].real()), bits_of(y[i].real())) << "element " << i;
    ASSERT_EQ(bits_of(x[i].imag()), bits_of(y[i].imag())) << "element " << i;
  }
}

// --- FP32 bit-identity -------------------------------------------------

TEST(PackedFp32, BitIdenticalToPerDotAcrossGeometries) {
  // k values straddle the FP32 chunk width (8): partial chunks, exact
  // multiples, and multi-chunk reductions; padded leading dimensions.
  const struct {
    int m, n, k, pad;
  } cases[] = {{1, 1, 1, 0},   {3, 5, 7, 2},   {8, 8, 8, 0}, {13, 9, 16, 3},
               {17, 6, 23, 1}, {5, 31, 40, 0}, {2, 2, 65, 5}};
  const M3xuEngine engine;
  int idx = 0;
  for (const auto& g : cases) {
    for (const bool benign : {true, false}) {
      Rng rng(4200 + idx++);
      const auto a = random_buffer(g.m, g.k, g.k + g.pad, rng, benign);
      const auto b = random_buffer(g.k, g.n, g.n + g.pad, rng, benign);
      auto c0 = random_buffer(g.m, g.n, g.n + g.pad, rng, true);
      auto c1 = c0;
      engine.gemm_fp32(g.m, g.n, g.k, a.data(), g.k + g.pad, b.data(),
                       g.n + g.pad, c0.data(), g.n + g.pad);
      engine.gemm_fp32_packed(g.m, g.n, g.k, a.data(), g.k + g.pad, b.data(),
                              g.n + g.pad, c1.data(), g.n + g.pad);
      expect_bitwise_equal(c0, c1);
    }
  }
}

TEST(PackedFp32, SpecialValuesBitIdentical) {
  const M3xuEngine engine;
  for (int trial = 0; trial < 8; ++trial) {
    Rng rng(5100 + trial);
    const int m = 9, n = 11, k = 19;
    auto a = random_buffer(m, k, k, rng, true);
    auto b = random_buffer(k, n, n, rng, true);
    add_specials(a, rng, 12);
    add_specials(b, rng, 12);
    auto c0 = random_buffer(m, n, n, rng, true);
    auto c1 = c0;
    engine.gemm_fp32(m, n, k, a.data(), k, b.data(), n, c0.data(), n);
    engine.gemm_fp32_packed(m, n, k, a.data(), k, b.data(), n, c1.data(), n);
    expect_bitwise_equal(c0, c1);
  }
}

TEST(PackedFp32, PrepackedSubBlocksMatchPerDot) {
  // Pack one big panel pair, then compute interior sub-blocks through
  // (row0, col0) offsets: each must equal the per-dot GEMM over the
  // corresponding operand slices.
  const int rows = 20, cols = 18, k = 21;
  Rng rng(6000);
  const auto a = random_buffer(rows, k, k, rng, false);
  const auto b = random_buffer(k, cols, cols, rng, false);
  PackedPanelFp32A pa;
  PackedPanelFp32B pb;
  pack_fp32_a(a.data(), k, rows, k, pa);
  pack_fp32_b(b.data(), cols, k, cols, pb);
  const M3xuEngine engine;
  const struct {
    int row0, col0, m, n;
  } blocks[] = {
      {0, 0, rows, cols}, {3, 2, 7, 9}, {13, 11, 7, 7}, {19, 17, 1, 1}};
  for (const auto& blk : blocks) {
    auto c0 = random_buffer(blk.m, blk.n, blk.n, rng, true);
    auto c1 = c0;
    engine.gemm_fp32(blk.m, blk.n, k,
                     a.data() + static_cast<std::size_t>(blk.row0) * k, k,
                     b.data() + blk.col0, cols, c0.data(), blk.n);
    engine.gemm_fp32_prepacked(pa, blk.row0, pb, blk.col0, blk.m, blk.n,
                               c1.data(), blk.n);
    expect_bitwise_equal(c0, c1);
  }
}

TEST(PackedFp32, NonDefaultRoundingConfigsStayBitIdentical) {
  // The fused streaming kernel must replicate both register semantics
  // (per-step rounding and the single-rounding ablation) at every
  // supported accumulation-precision boundary.
  for (const bool per_step : {true, false}) {
    for (const int prec : {24, 48, 63}) {
      M3xuConfig cfg;
      cfg.per_step_rounding = per_step;
      cfg.accum_prec = prec;
      const M3xuEngine engine(cfg);
      Rng rng(6400 + prec + (per_step ? 1000 : 0));
      const int m = 7, n = 9, k = 26;
      const auto a = random_buffer(m, k, k, rng, false);
      const auto b = random_buffer(k, n, n, rng, false);
      auto c0 = random_buffer(m, n, n, rng, true);
      auto c1 = c0;
      engine.gemm_fp32(m, n, k, a.data(), k, b.data(), n, c0.data(), n);
      engine.gemm_fp32_packed(m, n, k, a.data(), k, b.data(), n, c1.data(), n);
      expect_bitwise_equal(c0, c1);
    }
  }
}

// --- FP32C bit-identity ------------------------------------------------

TEST(PackedFp32c, BitIdenticalToPerDotAcrossGeometries) {
  const struct {
    int m, n, k, pad;
  } cases[] = {
      {1, 1, 1, 0}, {3, 5, 6, 2}, {4, 4, 4, 0}, {9, 7, 13, 1}, {2, 11, 33, 4}};
  const M3xuEngine engine;
  int idx = 0;
  for (const auto& g : cases) {
    for (const bool benign : {true, false}) {
      Rng rng(7300 + idx++);
      const auto a = random_cbuffer(g.m, g.k, g.k + g.pad, rng, benign);
      const auto b = random_cbuffer(g.k, g.n, g.n + g.pad, rng, benign);
      auto c0 = random_cbuffer(g.m, g.n, g.n + g.pad, rng, true);
      auto c1 = c0;
      engine.gemm_fp32c(g.m, g.n, g.k, a.data(), g.k + g.pad, b.data(),
                        g.n + g.pad, c0.data(), g.n + g.pad);
      engine.gemm_fp32c_packed(g.m, g.n, g.k, a.data(), g.k + g.pad, b.data(),
                               g.n + g.pad, c1.data(), g.n + g.pad);
      expect_bitwise_equal(c0, c1);
    }
  }
}

TEST(PackedFp32c, SpecialComponentsBitIdentical) {
  const M3xuEngine engine;
  for (int trial = 0; trial < 6; ++trial) {
    Rng rng(7900 + trial);
    const int m = 6, n = 7, k = 11;
    auto a = random_cbuffer(m, k, k, rng, true);
    auto b = random_cbuffer(k, n, n, rng, true);
    // Corrupt individual components so real/imag bypass flags diverge.
    const float inf = std::numeric_limits<float>::infinity();
    const float nan = std::numeric_limits<float>::quiet_NaN();
    for (int i = 0; i < 8; ++i) {
      auto& ae = a[rng.next_below(a.size())];
      ae = rng.next_below(2) ? std::complex<float>(inf, ae.imag())
                             : std::complex<float>(ae.real(), nan);
      auto& be = b[rng.next_below(b.size())];
      be = rng.next_below(2) ? std::complex<float>(0.0f, be.imag())
                             : std::complex<float>(be.real(), -inf);
    }
    auto c0 = random_cbuffer(m, n, n, rng, true);
    auto c1 = c0;
    engine.gemm_fp32c(m, n, k, a.data(), k, b.data(), n, c0.data(), n);
    engine.gemm_fp32c_packed(m, n, k, a.data(), k, b.data(), n, c1.data(), n);
    expect_bitwise_equal(c0, c1);
  }
}

// --- Fault-opportunity equivalence ------------------------------------

TEST(PackedFault, Fp32SameFaultSequenceAndOutputs) {
  // With an injector attached, the packed path reassembles per-dot
  // steps: every operand-buffer opportunity must fire in the per-dot
  // order so a fixed seed replays the identical fault set.
  for (int trial = 0; trial < 4; ++trial) {
    const fault::SiteRates rates = fault::SiteRates::uniform(2e-3);
    const fault::FaultInjector inj_perdot(900 + trial, rates);
    const fault::FaultInjector inj_packed(900 + trial, rates);
    M3xuConfig cfg_perdot, cfg_packed;
    cfg_perdot.injector = &inj_perdot;
    cfg_packed.injector = &inj_packed;
    const M3xuEngine perdot(cfg_perdot);
    const M3xuEngine packed(cfg_packed);
    Rng rng(8800 + trial);
    const int m = 8, n = 9, k = 20;
    auto a = random_buffer(m, k, k, rng, true);
    auto b = random_buffer(k, n, n, rng, true);
    if (trial % 2 == 1) {
      add_specials(a, rng, 5);
      add_specials(b, rng, 5);
    }
    auto c0 = random_buffer(m, n, n, rng, true);
    auto c1 = c0;
    perdot.gemm_fp32(m, n, k, a.data(), k, b.data(), n, c0.data(), n);
    packed.gemm_fp32_packed(m, n, k, a.data(), k, b.data(), n, c1.data(), n);
    expect_bitwise_equal(c0, c1);
    EXPECT_GT(inj_perdot.total_injected(), 0u);
    EXPECT_EQ(inj_perdot.log(), inj_packed.log());
    for (int s = 0; s < fault::kSiteCount; ++s) {
      const auto site = static_cast<fault::Site>(s);
      EXPECT_EQ(inj_perdot.opportunities(site), inj_packed.opportunities(site))
          << "site " << s;
      EXPECT_EQ(inj_perdot.injected(site), inj_packed.injected(site))
          << "site " << s;
    }
  }
}

TEST(PackedFault, Fp32cSameFaultSequenceAndOutputs) {
  const fault::SiteRates rates = fault::SiteRates::uniform(2e-3);
  const fault::FaultInjector inj_perdot(77, rates);
  const fault::FaultInjector inj_packed(77, rates);
  M3xuConfig cfg_perdot, cfg_packed;
  cfg_perdot.injector = &inj_perdot;
  cfg_packed.injector = &inj_packed;
  const M3xuEngine perdot(cfg_perdot);
  const M3xuEngine packed(cfg_packed);
  Rng rng(9100);
  const int m = 6, n = 6, k = 14;
  const auto a = random_cbuffer(m, k, k, rng, true);
  const auto b = random_cbuffer(k, n, n, rng, true);
  auto c0 = random_cbuffer(m, n, n, rng, true);
  auto c1 = c0;
  perdot.gemm_fp32c(m, n, k, a.data(), k, b.data(), n, c0.data(), n);
  packed.gemm_fp32c_packed(m, n, k, a.data(), k, b.data(), n, c1.data(), n);
  expect_bitwise_equal(c0, c1);
  EXPECT_GT(inj_perdot.total_injected(), 0u);
  EXPECT_EQ(inj_perdot.log(), inj_packed.log());
  for (int s = 0; s < fault::kSiteCount; ++s) {
    const auto site = static_cast<fault::Site>(s);
    EXPECT_EQ(inj_perdot.opportunities(site), inj_packed.opportunities(site));
    EXPECT_EQ(inj_perdot.injected(site), inj_packed.injected(site));
  }
}

// --- 64-bit indexing regression ---------------------------------------

/// Maps `floats` floats of untouched-pages-are-free virtual memory.
float* map_virtual(std::size_t floats) {
  void* p = mmap(nullptr, floats * sizeof(float), PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  return p == MAP_FAILED ? nullptr : static_cast<float*>(p);
}

TEST(PackedIndexing, LargeLeadingDimensionsDoNotOverflowInt) {
  // lda = ldb = 2^30: row 2 of A lives at virtual float index 2^31,
  // past what 32-bit index arithmetic (i * lda) can address. Only a few
  // pages are ever touched thanks to MAP_NORESERVE, so the test runs in
  // ordinary CI memory; the result must match a dense copy.
  const int ld = 1 << 30;
  const int m = 3, n = 2, k = 3;
  const std::size_t floats =
      static_cast<std::size_t>(m - 1) * ld + k + 1;  // ~8 GiB virtual
  float* big_a = map_virtual(floats);
  float* big_b = map_virtual(floats);
  if (big_a == nullptr || big_b == nullptr) {
    if (big_a != nullptr) munmap(big_a, floats * sizeof(float));
    if (big_b != nullptr) munmap(big_b, floats * sizeof(float));
    GTEST_SKIP() << "cannot reserve 8 GiB of virtual address space";
  }
  Rng rng(12000);
  std::vector<float> dense_a(static_cast<std::size_t>(m) * k);
  std::vector<float> dense_b(static_cast<std::size_t>(k) * n);
  for (auto& v : dense_a) v = rng.scaled_float();
  for (auto& v : dense_b) v = rng.scaled_float();
  for (int i = 0; i < m; ++i) {
    for (int kk = 0; kk < k; ++kk) {
      big_a[static_cast<std::size_t>(i) * ld + kk] = dense_a[i * k + kk];
    }
  }
  for (int kk = 0; kk < k; ++kk) {
    for (int j = 0; j < n; ++j) {
      big_b[static_cast<std::size_t>(kk) * ld + j] = dense_b[kk * n + j];
    }
  }
  const M3xuEngine engine;
  std::vector<float> c_ref(static_cast<std::size_t>(m) * n, 0.0f);
  engine.gemm_fp32(m, n, k, dense_a.data(), k, dense_b.data(), n,
                   c_ref.data(), n);
  // Per-dot route with huge lda/ldb.
  std::vector<float> c_perdot(static_cast<std::size_t>(m) * n, 0.0f);
  engine.gemm_fp32(m, n, k, big_a, ld, big_b, ld, c_perdot.data(), n);
  expect_bitwise_equal(c_ref, c_perdot);
  // Packed route (pack_fp32_a/b index with size_t as well).
  std::vector<float> c_packed(static_cast<std::size_t>(m) * n, 0.0f);
  engine.gemm_fp32_packed(m, n, k, big_a, ld, big_b, ld, c_packed.data(), n);
  expect_bitwise_equal(c_ref, c_packed);
  munmap(big_a, floats * sizeof(float));
  munmap(big_b, floats * sizeof(float));
}

}  // namespace
}  // namespace m3xu::core
