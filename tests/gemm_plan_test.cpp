// Tests for the compile-then-execute GemmPlan layer: bit-identity with
// the ad-hoc resilient driver on every route rung and both dtypes,
// prepacked B-panel reuse (hits across executes, fingerprint-guarded
// refresh on a B change), per-execute rails, and operand validation.
#include <gtest/gtest.h>

#include <complex>
#include <cstring>
#include <utility>

#include "common/bits.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "gemm/matrix.hpp"
#include "gemm/plan.hpp"
#include "gemm/tiled_driver.hpp"

namespace m3xu::gemm {
namespace {

template <typename T>
struct Problem {
  Matrix<T> a, b, c;
};

template <typename T>
Problem<T> make(int m, int n, int k, std::uint64_t seed) {
  Problem<T> p{Matrix<T>(m, k), Matrix<T>(k, n), Matrix<T>(m, n)};
  Rng rng(seed);
  fill_random(p.a, rng);
  fill_random(p.b, rng);
  fill_random(p.c, rng);
  return p;
}

template <typename T>
bool bits_equal(const Matrix<T>& x, const Matrix<T>& y) {
  return x.size() == y.size() &&
         std::memcmp(x.data(), y.data(), x.size() * sizeof(T)) == 0;
}

/// Engine configs pinning each initial route rung: the default
/// (microkernel), the packed-fused rung, and the generic per-dot rung.
std::vector<std::pair<const char*, core::M3xuConfig>> route_configs() {
  std::vector<std::pair<const char*, core::M3xuConfig>> out;
  out.emplace_back("microkernel", core::M3xuConfig{});
  core::M3xuConfig nomk;
  nomk.enable_microkernel = false;
  out.emplace_back("packed_fused", nomk);
  core::M3xuConfig generic;
  generic.force_generic = true;
  out.emplace_back("generic", generic);
  return out;
}

TEST(GemmPlan, SgemmBitIdenticalToAdHocOnEveryRoute) {
  const TileConfig tile{64, 64, 16, 32, 32};
  const AbftConfig abft{true};
  const RecoveryPolicy policy;
  const Problem<float> p = make<float>(100, 90, 130, 601);
  for (const auto& [name, cfg] : route_configs()) {
    const core::M3xuEngine engine(cfg);
    Matrix<float> ad_hoc = p.c;
    tiled_sgemm(engine, tile, abft, policy, ExecConfig{}, p.a, p.b, ad_hoc);

    PlanOptions options;
    options.tile = tile;
    options.abft = abft;
    options.policy = policy;
    const GemmPlan plan = GemmPlan::compile(cfg, {100, 90, 130, false},
                                            options);
    Matrix<float> planned = p.c;
    plan.execute(p.a, p.b, planned);
    EXPECT_TRUE(bits_equal(planned, ad_hoc)) << "route " << name;
    EXPECT_EQ(plan.executions(), 1u);
  }
}

TEST(GemmPlan, CgemmBitIdenticalToAdHocOnEveryRoute) {
  using C = std::complex<float>;
  const TileConfig tile{64, 64, 16, 32, 32};
  const AbftConfig abft{true};
  const RecoveryPolicy policy;
  const Problem<C> p = make<C>(60, 52, 68, 602);
  for (const auto& [name, cfg] : route_configs()) {
    const core::M3xuEngine engine(cfg);
    Matrix<C> ad_hoc = p.c;
    tiled_cgemm(engine, tile, abft, policy, ExecConfig{}, p.a, p.b, ad_hoc);

    PlanOptions options;
    options.tile = tile;
    options.abft = abft;
    options.policy = policy;
    const GemmPlan plan =
        GemmPlan::compile(cfg, {60, 52, 68, true}, options);
    Matrix<C> planned = p.c;
    plan.execute(p.a, p.b, planned);
    EXPECT_TRUE(bits_equal(planned, ad_hoc)) << "route " << name;
  }
}

TEST(GemmPlan, RepeatExecutesServePanelsFromPlanStore) {
  const Problem<float> p = make<float>(96, 96, 96, 603);
  const GemmPlan plan = GemmPlan::compile(core::M3xuConfig{}, {96, 96, 96});
  Matrix<float> c1 = p.c;
  plan.execute(p.a, p.b, c1);
  const PlanPanelStats first = plan.panel_stats();
  EXPECT_GT(first.misses, 0u);  // first execute packs and publishes
  EXPECT_EQ(first.refreshes, 0u);

  Matrix<float> c2 = p.c;
  plan.execute(p.a, p.b, c2);
  const PlanPanelStats second = plan.panel_stats();
  EXPECT_EQ(second.misses, first.misses);  // no new packs
  EXPECT_GT(second.hits, first.hits);      // panels served from the store
  EXPECT_TRUE(bits_equal(c1, c2));
}

TEST(GemmPlan, DifferentBRefreshesStoreAndStaysCorrect) {
  const Problem<float> p = make<float>(64, 64, 64, 604);
  Matrix<float> b2(64, 64);
  Rng rng(605);
  fill_random(b2, rng);

  const GemmPlan plan = GemmPlan::compile(core::M3xuConfig{}, {64, 64, 64});
  Matrix<float> c1 = p.c;
  plan.execute(p.a, p.b, c1);
  Matrix<float> c2 = p.c;
  plan.execute(p.a, b2, c2);  // new B bytes: fingerprint must not match
  EXPECT_EQ(plan.panel_stats().refreshes, 1u);

  // The second result must equal the ad-hoc driver on (a, b2) - a
  // stale panel from the first B would corrupt it.
  const core::M3xuEngine engine;
  Matrix<float> ref = p.c;
  tiled_sgemm(engine, TileConfig{}, AbftConfig{}, RecoveryPolicy{},
              ExecConfig{}, p.a, b2, ref);
  EXPECT_TRUE(bits_equal(c2, ref));
}

TEST(GemmPlan, PrepackMakesFirstExecuteAllHits) {
  const Problem<float> p = make<float>(96, 80, 64, 606);
  GemmPlan plan = GemmPlan::compile(core::M3xuConfig{}, {96, 80, 64});
  plan.prepack_b(p.b);
  Matrix<float> c = p.c;
  plan.execute(p.a, p.b, c);
  const PlanPanelStats stats = plan.panel_stats();
  EXPECT_EQ(stats.misses, 0u) << "prepacked panels must cover every tile";
  EXPECT_GT(stats.hits, 0u);

  const core::M3xuEngine engine;
  Matrix<float> ref = p.c;
  tiled_sgemm(engine, TileConfig{}, AbftConfig{}, RecoveryPolicy{},
              ExecConfig{}, p.a, p.b, ref);
  EXPECT_TRUE(bits_equal(c, ref));
}

TEST(GemmPlan, CgemmPrepackServesComplexPanels) {
  using C = std::complex<float>;
  const Problem<C> p = make<C>(48, 48, 48, 607);
  GemmPlan plan = GemmPlan::compile(core::M3xuConfig{}, {48, 48, 48, true});
  plan.prepack_b(p.b);
  Matrix<C> c = p.c;
  plan.execute(p.a, p.b, c);
  EXPECT_EQ(plan.panel_stats().misses, 0u);

  const core::M3xuEngine engine;
  Matrix<C> ref = p.c;
  tiled_cgemm(engine, TileConfig{}, AbftConfig{}, RecoveryPolicy{},
              ExecConfig{}, p.a, p.b, ref);
  EXPECT_TRUE(bits_equal(c, ref));
}

TEST(GemmPlan, PlanSurvivesMove) {
  // The dispatch points into pimpl-owned engines; moving the plan must
  // not invalidate it.
  const Problem<float> p = make<float>(64, 64, 64, 608);
  GemmPlan original = GemmPlan::compile(core::M3xuConfig{}, {64, 64, 64});
  Matrix<float> before = p.c;
  original.execute(p.a, p.b, before);

  const GemmPlan moved = std::move(original);
  Matrix<float> after = p.c;
  moved.execute(p.a, p.b, after);
  EXPECT_TRUE(bits_equal(before, after));
  EXPECT_EQ(moved.executions(), 2u);
}

TEST(GemmPlan, ShapeMismatchFailsTheCheck) {
  const ScopedCheckHandler guard(&throwing_check_failure_handler);
  const GemmPlan plan = GemmPlan::compile(core::M3xuConfig{}, {64, 64, 64});
  const Problem<float> wrong = make<float>(32, 32, 32, 609);
  Matrix<float> c = wrong.c;
  EXPECT_THROW(plan.execute(wrong.a, wrong.b, c), CheckError);
}

TEST(GemmPlan, DtypeMismatchFailsTheCheck) {
  using C = std::complex<float>;
  const ScopedCheckHandler guard(&throwing_check_failure_handler);
  const GemmPlan plan = GemmPlan::compile(core::M3xuConfig{}, {48, 48, 48});
  const Problem<C> p = make<C>(48, 48, 48, 610);
  Matrix<C> c = p.c;
  EXPECT_THROW(plan.execute(p.a, p.b, c), CheckError);
}

TEST(GemmPlan, CompileRejectsInvalidTile) {
  const ScopedCheckHandler guard(&throwing_check_failure_handler);
  PlanOptions options;
  options.tile = TileConfig{128, 128, 32, 0, 32};  // zero warp tile
  EXPECT_THROW(
      GemmPlan::compile(core::M3xuConfig{}, {64, 64, 64}, options),
      CheckError);
}

TEST(GemmPlan, LabelNamesShapeAndDtype) {
  EXPECT_EQ(plan_key_label({512, 256, 128, false}), "sgemm.512x256x128");
  EXPECT_EQ(plan_key_label({16, 16, 16, true}), "cgemm.16x16x16");
  const GemmPlan plan = GemmPlan::compile(core::M3xuConfig{}, {64, 32, 16});
  EXPECT_EQ(plan.label(), "sgemm.64x32x16");
}

}  // namespace
}  // namespace m3xu::gemm
