// Tests for the hierarchical tiled GEMM driver: bit-identity with the
// flat engine loop, tile-shape sweeps, edge-tile handling, and the
// traffic counters the simulator's model assumes.
#include <gtest/gtest.h>

#include <complex>
#include <string>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "gemm/matrix.hpp"
#include "gemm/reference.hpp"
#include "gemm/tiled_driver.hpp"

namespace m3xu::gemm {
namespace {

struct Problem {
  Matrix<float> a, b, c;
};

Problem make(int m, int n, int k, std::uint64_t seed) {
  Problem p{Matrix<float>(m, k), Matrix<float>(k, n), Matrix<float>(m, n)};
  Rng rng(seed);
  fill_random(p.a, rng);
  fill_random(p.b, rng);
  fill_random(p.c, rng);
  return p;
}

class TileSweep : public ::testing::TestWithParam<TileConfig> {};

TEST_P(TileSweep, BitIdenticalToFlatEngineLoop) {
  // Same K-chunk rounding boundaries -> the hierarchy is invisible to
  // the arithmetic.
  const core::M3xuEngine engine;
  const Problem p = make(100, 90, 130, 501);
  Matrix<float> flat = p.c;
  engine.gemm_fp32(100, 90, 130, p.a.data(), p.a.ld(), p.b.data(), p.b.ld(),
                   flat.data(), flat.ld());
  Matrix<float> tiled = p.c;
  tiled_sgemm(engine, GetParam(), p.a, p.b, tiled);
  for (int i = 0; i < 100; ++i) {
    for (int j = 0; j < 90; ++j) {
      ASSERT_EQ(bits_of(tiled(i, j)), bits_of(flat(i, j))) << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Tiles, TileSweep,
    ::testing::Values(TileConfig{64, 64, 16, 32, 32},
                      TileConfig{128, 128, 32, 64, 32},
                      TileConfig{32, 32, 8, 16, 16},
                      TileConfig{128, 64, 64, 32, 64}),
    [](const auto& info) {
      return "b" + std::to_string(info.param.block_m) + "x" +
             std::to_string(info.param.block_n) + "x" +
             std::to_string(info.param.block_k);
    });

TEST(TiledGemm, StatsMatchGeometry) {
  const core::M3xuEngine engine;
  const Problem p = make(256, 128, 64, 502);
  Matrix<float> c = p.c;
  const TileConfig cfg{128, 128, 32, 64, 32};
  const TiledGemmStats s = tiled_sgemm(engine, cfg, p.a, p.b, c);
  EXPECT_EQ(s.block_tiles, 2);             // 256/128 x 128/128
  EXPECT_EQ(s.mainloop_iterations, 2 * 2);  // K=64 / block_k=32 per tile
  // Staged bytes: per tile-iteration (block_m + block_n) * block_k * 4.
  EXPECT_DOUBLE_EQ(s.staged_bytes, 4.0 * (128 + 128) * 32 * 4);
  // MMA instructions: M*N*K / (16*8*8).
  EXPECT_EQ(s.mma_instructions, 256L * 128 * 64 / (16 * 8 * 8));
}

TEST(TiledGemm, RaggedEdgesBitIdenticalToFlatLoop) {
  const core::M3xuEngine engine;
  const Problem p = make(77, 45, 53, 503);  // nothing divides anything
  Matrix<float> flat = p.c;
  engine.gemm_fp32(77, 45, 53, p.a.data(), p.a.ld(), p.b.data(), p.b.ld(),
                   flat.data(), flat.ld());
  Matrix<float> c = p.c;
  tiled_sgemm(engine, TileConfig{64, 64, 16, 32, 32}, p.a, p.b, c);
  for (int i = 0; i < 77; ++i) {
    for (int j = 0; j < 45; ++j) {
      ASSERT_EQ(bits_of(c(i, j)), bits_of(flat(i, j))) << i << "," << j;
    }
  }
  // And stays close to the double reference on this modest K.
  Matrix<double> ref = widen(p.c);
  ref_dgemm(widen(p.a), widen(p.b), ref);
  EXPECT_LT(compare(c, ref).mean_rel, 1e-4);
}

TEST(TiledGemm, ComplexBitIdenticalToFlatLoop) {
  const core::M3xuEngine engine;
  Rng rng(504);
  const int m = 48, n = 40, k = 36;
  Matrix<std::complex<float>> a(m, k), b(k, n), c(m, n);
  fill_random(a, rng);
  fill_random(b, rng);
  fill_random(c, rng);
  Matrix<std::complex<float>> flat = c;
  engine.gemm_fp32c(m, n, k, a.data(), k, b.data(), n, flat.data(), n);
  Matrix<std::complex<float>> tiled = c;
  tiled_cgemm(engine, TileConfig{32, 32, 8, 16, 16}, a, b, tiled);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      ASSERT_EQ(bits_of(tiled(i, j).real()), bits_of(flat(i, j).real()));
      ASSERT_EQ(bits_of(tiled(i, j).imag()), bits_of(flat(i, j).imag()));
    }
  }
}

TEST(TiledGemm, RepeatedRunsAreDeterministic) {
  // Tiles are independent, so concurrent scheduling order cannot leak
  // into the results: repeated runs are bit-identical.
  const core::M3xuEngine engine;
  const Problem p = make(130, 130, 64, 505);
  Matrix<float> c1 = p.c, c2 = p.c;
  const TileConfig cfg{64, 64, 32, 32, 32};
  tiled_sgemm(engine, cfg, p.a, p.b, c1);
  tiled_sgemm(engine, cfg, p.a, p.b, c2);
  for (int i = 0; i < 130; ++i) {
    for (int j = 0; j < 130; ++j) {
      ASSERT_EQ(bits_of(c1(i, j)), bits_of(c2(i, j)));
    }
  }
}

TEST(TiledGemm, AbftCleanPathBitIdenticalWithZeroCounters) {
  // Enabling the guard on a fault-free engine must not change a single
  // bit of the output, and no counter beyond tile_checks may move.
  const core::M3xuEngine engine;
  const Problem p = make(100, 90, 130, 507);
  const TileConfig cfg{64, 64, 16, 32, 32};
  Matrix<float> plain = p.c, guarded = p.c;
  const TiledGemmStats s0 = tiled_sgemm(engine, cfg, p.a, p.b, plain);
  const TiledGemmStats s1 =
      tiled_sgemm(engine, cfg, AbftConfig{true, 1.0, 2}, p.a, p.b, guarded);
  for (int i = 0; i < 100; ++i) {
    for (int j = 0; j < 90; ++j) {
      ASSERT_EQ(bits_of(guarded(i, j)), bits_of(plain(i, j))) << i << "," << j;
    }
  }
  EXPECT_EQ(s0.abft_tile_checks, 0);
  EXPECT_EQ(s1.abft_tile_checks, s1.block_tiles);
  EXPECT_EQ(s1.abft_detected, 0);
  EXPECT_EQ(s1.abft_recomputed, 0);
  EXPECT_EQ(s1.abft_recovered, 0);
  EXPECT_EQ(s1.abft_false_alarms, 0);
  // The traffic counters are unaffected by the guard.
  EXPECT_EQ(s1.mainloop_iterations, s0.mainloop_iterations);
  EXPECT_DOUBLE_EQ(s1.staged_bytes, s0.staged_bytes);
  EXPECT_EQ(s1.mma_instructions, s0.mma_instructions);
}

TEST(TiledGemm, AbftCleanPathComplexBitIdentical) {
  const core::M3xuEngine engine;
  Rng rng(508);
  const int m = 48, n = 40, k = 36;
  Matrix<std::complex<float>> a(m, k), b(k, n), c(m, n);
  fill_random(a, rng);
  fill_random(b, rng);
  fill_random(c, rng);
  Matrix<std::complex<float>> plain = c, guarded = c;
  const TileConfig cfg{32, 32, 8, 16, 16};
  tiled_cgemm(engine, cfg, a, b, plain);
  const TiledGemmStats s =
      tiled_cgemm(engine, cfg, AbftConfig{true, 1.0, 2}, a, b, guarded);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      ASSERT_EQ(bits_of(guarded(i, j).real()), bits_of(plain(i, j).real()));
      ASSERT_EQ(bits_of(guarded(i, j).imag()), bits_of(plain(i, j).imag()));
    }
  }
  EXPECT_EQ(s.abft_detected, 0);
  EXPECT_EQ(s.abft_false_alarms, 0);
}

TEST(TiledGemm, AbftMultiColumnGridSharesRowChecksums) {
  // A 2x3 block grid: each block row's A column-sum vector is computed
  // once and reused across the three block columns. Detection behavior
  // and output bits must be indistinguishable from recomputing it per
  // tile.
  const core::M3xuEngine engine;
  const Problem p = make(96, 130, 72, 511);
  const TileConfig cfg{48, 48, 24, 24, 24};
  Matrix<float> flat = p.c;
  engine.gemm_fp32(96, 130, 72, p.a.data(), p.a.ld(), p.b.data(), p.b.ld(),
                   flat.data(), flat.ld());
  Matrix<float> guarded = p.c;
  const TiledGemmStats s =
      tiled_sgemm(engine, cfg, AbftConfig{true, 1.0, 2}, p.a, p.b, guarded);
  for (int i = 0; i < 96; ++i) {
    for (int j = 0; j < 130; ++j) {
      ASSERT_EQ(bits_of(guarded(i, j)), bits_of(flat(i, j))) << i << "," << j;
    }
  }
  EXPECT_EQ(s.block_tiles, 2 * 3);
  EXPECT_EQ(s.abft_tile_checks, s.block_tiles);
  EXPECT_EQ(s.abft_detected, 0);
  EXPECT_EQ(s.abft_recomputed, 0);
  EXPECT_EQ(s.abft_recovered, 0);
  EXPECT_EQ(s.abft_false_alarms, 0);
}

TEST(TiledGemm, AbftMultiTileRecoversUnderInjection) {
  // Detection must keep firing on a multi-tile grid where the cached
  // per-block-row checksums are shared across block columns.
  const Problem p = make(96, 96, 48, 512);
  const TileConfig cfg{48, 48, 24, 24, 24};
  const core::M3xuEngine clean;
  Matrix<float> ref = p.c;
  tiled_sgemm(clean, cfg, p.a, p.b, ref);

  const fault::FaultInjector inj(37, fault::SiteRates::uniform(1e-4));
  core::M3xuConfig mcfg;
  mcfg.injector = &inj;
  const core::M3xuEngine faulty(mcfg);
  Matrix<float> c = p.c;
  const TiledGemmStats s =
      tiled_sgemm(faulty, cfg, AbftConfig{true, 1.0, 4}, p.a, p.b, c);
  EXPECT_EQ(s.block_tiles, 4);
  ASSERT_GT(inj.total_injected(), 0u);
  ASSERT_GT(s.abft_detected, 0);
  EXPECT_EQ(s.abft_recovered, s.abft_detected);
  for (int i = 0; i < 96; ++i) {
    for (int j = 0; j < 96; ++j) {
      ASSERT_EQ(bits_of(c(i, j)), bits_of(ref(i, j))) << i << "," << j;
    }
  }
}

TEST(TiledGemm, InvalidTileConfigReportsClearMessage) {
  const core::M3xuEngine engine;
  const Problem p = make(32, 32, 32, 509);
  Matrix<float> c = p.c;
  const ScopedCheckHandler guard(&throwing_check_failure_handler);
  try {
    // warp_m does not divide block_m.
    tiled_sgemm(engine, TileConfig{48, 32, 16, 32, 16}, p.a, p.b, c);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("TileConfig invalid"),
              std::string::npos);
  }
}

TEST(TiledGemm, ShapeMismatchReportsClearMessage) {
  const core::M3xuEngine engine;
  Rng rng(510);
  Matrix<float> a(32, 16), b(24, 32), c(32, 32);  // A.cols != B.rows
  fill_random(a, rng);
  fill_random(b, rng);
  fill_random(c, rng);
  const ScopedCheckHandler guard(&throwing_check_failure_handler);
  try {
    tiled_sgemm(engine, TileConfig{32, 32, 16, 16, 16}, a, b, c);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("A columns != B rows"),
              std::string::npos);
  }
}

TEST(TileConfigValid, RejectsNonPositiveFieldsWithoutUb) {
  // Regression: valid() used to run the % divisibility checks before
  // checking positivity, which is UB (division by zero) on the zero
  // warp tiles an autotuner search enumerates. Under the UBSan CI
  // matrix this test fails loudly if that ordering ever regresses.
  EXPECT_TRUE(TileConfig{}.valid());
  const auto mutate = [](int TileConfig::* field, int value) {
    TileConfig tile{};
    tile.*field = value;
    return tile;
  };
  for (const int bad : {0, -1, -128}) {
    EXPECT_FALSE(mutate(&TileConfig::block_m, bad).valid()) << bad;
    EXPECT_FALSE(mutate(&TileConfig::block_n, bad).valid()) << bad;
    EXPECT_FALSE(mutate(&TileConfig::block_k, bad).valid()) << bad;
    EXPECT_FALSE(mutate(&TileConfig::warp_m, bad).valid()) << bad;
    EXPECT_FALSE(mutate(&TileConfig::warp_n, bad).valid()) << bad;
  }
  // Divisibility still enforced once positivity holds.
  EXPECT_FALSE((TileConfig{48, 32, 16, 32, 16}).valid());
  EXPECT_FALSE((TileConfig{64, 48, 16, 32, 32}).valid());
}

TEST(TiledGemm, ZeroWarpTileFailsTheEntryCheckCleanly) {
  // The driver's M3XU_CHECK path must reach the handler (and not trip
  // UB inside valid()) for the same malformed configs.
  const core::M3xuEngine engine;
  const Problem p = make(32, 32, 32, 511);
  Matrix<float> c = p.c;
  const ScopedCheckHandler guard(&throwing_check_failure_handler);
  EXPECT_THROW(
      tiled_sgemm(engine, TileConfig{64, 64, 16, 0, 32}, p.a, p.b, c),
      CheckError);
  EXPECT_THROW(
      tiled_sgemm(engine, TileConfig{64, 64, -8, 32, 32}, p.a, p.b, c),
      CheckError);
}

TEST(TiledGemm, RejectsMisalignedBlockK) {
  const core::M3xuEngine engine;
  const Problem p = make(32, 32, 32, 506);
  Matrix<float> c = p.c;
  // block_k must be a multiple of the FP32 instruction K (8).
  EXPECT_DEATH(tiled_sgemm(engine, TileConfig{32, 32, 12, 16, 16}, p.a, p.b,
                           c),
               "");
}

}  // namespace
}  // namespace m3xu::gemm
