// Stress tests for the thread pool: repeated exception propagation
// rounds, and concurrent parallel_for misuse from a second OS thread,
// which must fail as a clean CheckError (via ScopedCheckHandler) rather
// than deadlocking or corrupting the pool. Runs under TSan via the
// "tsan" ctest label.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace m3xu {
namespace {

TEST(ThreadPoolStress, ExceptionPropagationSurvivesRepeatedRounds) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> ran{0};
    EXPECT_THROW(
        pool.parallel_for(100,
                          [&](std::size_t i) {
                            ran.fetch_add(1, std::memory_order_relaxed);
                            if (i == 37) throw std::runtime_error("boom");
                          }),
        std::runtime_error);
    EXPECT_GE(ran.load(), 1);
    // The pool must be fully usable again after each failed round.
    std::atomic<int> clean{0};
    pool.parallel_for(64, [&](std::size_t) {
      clean.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(clean.load(), 64);
  }
}

TEST(ThreadPoolStress, ConcurrentMisuseFailsWithCheckErrorNotDeadlock) {
  // A second OS thread calling parallel_for on a pool that is already
  // mid-parallel_for is API misuse; the nested-use check must surface
  // as a CheckError on the offending thread (with the throwing handler
  // installed) while the legitimate call completes normally.
  ScopedCheckHandler guard(&throwing_check_failure_handler);
  ThreadPool pool(2);
  for (int round = 0; round < 25; ++round) {
    std::atomic<bool> inside{false};
    std::atomic<bool> release{false};
    std::atomic<bool> second_got_check_error{false};
    std::thread intruder([&] {
      while (!inside.load(std::memory_order_acquire)) std::this_thread::yield();
      try {
        pool.parallel_for(4, [](std::size_t) {});
      } catch (const CheckError&) {
        second_got_check_error.store(true, std::memory_order_release);
      }
      release.store(true, std::memory_order_release);
    });
    // n >= 2 so the pooled path (which owns the nested-use check) runs;
    // every iteration parks until the intruder has been rejected.
    pool.parallel_for(8, [&](std::size_t) {
      inside.store(true, std::memory_order_release);
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
    intruder.join();
    ASSERT_TRUE(second_got_check_error.load())
        << "round " << round
        << ": concurrent misuse did not raise CheckError";
  }
}

TEST(ThreadPoolStress, MisuseAndBodyExceptionTogether) {
  // The owner's body throws after the intruder has been rejected: the
  // owner sees its own exception, the intruder still gets CheckError,
  // and the pool survives for a clean follow-up round.
  ScopedCheckHandler guard(&throwing_check_failure_handler);
  ThreadPool pool(2);
  std::atomic<bool> inside{false};
  std::atomic<bool> release{false};
  std::atomic<bool> second_got_check_error{false};
  std::thread intruder([&] {
    while (!inside.load(std::memory_order_acquire)) std::this_thread::yield();
    try {
      pool.parallel_for(4, [](std::size_t) {});
    } catch (const CheckError&) {
      second_got_check_error.store(true, std::memory_order_release);
    }
    release.store(true, std::memory_order_release);
  });
  EXPECT_THROW(pool.parallel_for(8,
                                 [&](std::size_t) {
                                   inside.store(true,
                                                std::memory_order_release);
                                   while (!release.load(
                                       std::memory_order_acquire)) {
                                     std::this_thread::yield();
                                   }
                                   throw std::runtime_error("owner body");
                                 }),
               std::runtime_error);
  intruder.join();
  EXPECT_TRUE(second_got_check_error.load());
  std::atomic<int> clean{0};
  pool.parallel_for(16, [&](std::size_t) {
    clean.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(clean.load(), 16);
}

}  // namespace
}  // namespace m3xu
