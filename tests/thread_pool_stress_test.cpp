// Stress tests for the thread pool: repeated exception propagation
// rounds, concurrent submissions from many OS threads (which queue
// rather than abort - the multi-tenant serving layer depends on it),
// cancellable/deadline-bounded queue waits, and the one remaining
// misuse shape - a body resubmitting to its own pool - which must
// fail as a clean CheckError (via ScopedCheckHandler) rather than
// deadlocking. Runs under TSan via the "tsan" ctest label.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/cancellation.hpp"
#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "telemetry/telemetry.hpp"

namespace m3xu {
namespace {

TEST(ThreadPoolStress, ExceptionPropagationSurvivesRepeatedRounds) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> ran{0};
    EXPECT_THROW(
        pool.parallel_for(100,
                          [&](std::size_t i) {
                            ran.fetch_add(1, std::memory_order_relaxed);
                            if (i == 37) throw std::runtime_error("boom");
                          }),
        std::runtime_error);
    EXPECT_GE(ran.load(), 1);
    // The pool must be fully usable again after each failed round.
    std::atomic<int> clean{0};
    pool.parallel_for(64, [&](std::size_t) {
      clean.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(clean.load(), 64);
  }
}

TEST(ThreadPoolStress, ConcurrentSubmissionsQueueAndAllComplete) {
  // Many OS threads hammer one pool with parallel_for calls at once.
  // Every call must run every one of its iterations exactly once -
  // concurrent submitters serialize through the submission queue, they
  // never abort and never corrupt each other's tasks.
  ThreadPool pool(3);
  constexpr int kThreads = 6;
  constexpr int kRounds = 20;
  constexpr std::size_t kN = 64;
  std::vector<std::atomic<std::uint64_t>> sums(kThreads);
  for (auto& s : sums) s.store(0);
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        pool.parallel_for(kN, 1, [&](std::size_t i) {
          sums[t].fetch_add(i + 1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& c : clients) c.join();
  const std::uint64_t per_round = kN * (kN + 1) / 2;
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(sums[t].load(), per_round * kRounds) << "client " << t;
  }
}

TEST(ThreadPoolStress, QueuedSubmissionIsCancellable) {
  // While one call occupies the pool, a queued second call whose token
  // latches must throw CancelledError (tagged with the cancel reason)
  // without running a single iteration.
  ThreadPool pool(2);
  std::atomic<bool> inside{false};
  std::atomic<bool> release{false};
  CancellationToken token;
  std::atomic<int> queued_ran{0};
  std::atomic<bool> got_cancel{false};
  std::thread waiter([&] {
    while (!inside.load(std::memory_order_acquire)) std::this_thread::yield();
    ParallelOptions options;
    options.token = &token;
    try {
      pool.parallel_for(16, 1,
                        [&](std::size_t) {
                          queued_ran.fetch_add(1, std::memory_order_relaxed);
                        },
                        options);
    } catch (const CancelledError& e) {
      got_cancel.store(true, std::memory_order_release);
      EXPECT_EQ(e.reason(), CancelReason::kShed);
    }
    release.store(true, std::memory_order_release);
  });
  pool.parallel_for(8, [&](std::size_t i) {
    inside.store(true, std::memory_order_release);
    if (i == 0) {
      // Latch the queued caller's token while it waits for the pool,
      // then let the occupying call finish.
      while (!inside.load(std::memory_order_acquire)) {}
      token.request_cancel("shed while queued", CancelReason::kShed);
    }
    while (!release.load(std::memory_order_acquire) &&
           !token.cancelled()) {
      std::this_thread::yield();
    }
  });
  waiter.join();
  EXPECT_TRUE(got_cancel.load());
  EXPECT_EQ(queued_ran.load(), 0);
  // The pool stays usable.
  std::atomic<int> clean{0};
  pool.parallel_for(32, [&](std::size_t) {
    clean.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(clean.load(), 32);
}

TEST(ThreadPoolStress, QueuedSubmissionHonorsDeadline) {
  // A queued call's deadline_ms covers the queue wait: if the pool
  // stays busy past the deadline, the queued caller gets
  // DeadlineExceeded without executing anything.
  ThreadPool pool(2);
  std::atomic<bool> inside{false};
  std::atomic<bool> release{false};
  std::atomic<int> queued_ran{0};
  std::atomic<bool> got_deadline{false};
  std::thread waiter([&] {
    while (!inside.load(std::memory_order_acquire)) std::this_thread::yield();
    ParallelOptions options;
    options.deadline_ms = 20;
    try {
      pool.parallel_for(16, 1,
                        [&](std::size_t) {
                          queued_ran.fetch_add(1, std::memory_order_relaxed);
                        },
                        options);
    } catch (const DeadlineExceeded&) {
      got_deadline.store(true, std::memory_order_release);
    }
    release.store(true, std::memory_order_release);
  });
  pool.parallel_for(8, [&](std::size_t) {
    inside.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  waiter.join();
  EXPECT_TRUE(got_deadline.load());
  EXPECT_EQ(queued_ran.load(), 0);
}

TEST(ThreadPoolStress, NestedSubmissionFromBodyFailsWithCheckError) {
  // The one submission shape that cannot queue: a body running on the
  // pool resubmitting to the same pool would wait on the very task its
  // own thread is executing. It must fail as a CheckError on the
  // offending iteration, not deadlock.
  ScopedCheckHandler guard(&throwing_check_failure_handler);
  ThreadPool pool(2);
  std::atomic<bool> got_check_error{false};
  EXPECT_THROW(pool.parallel_for(8,
                                 [&](std::size_t i) {
                                   if (i == 0) {
                                     try {
                                       pool.parallel_for(4, [](std::size_t) {});
                                     } catch (const CheckError&) {
                                       got_check_error.store(
                                           true, std::memory_order_release);
                                       throw;
                                     }
                                   }
                                 }),
               CheckError);
  EXPECT_TRUE(got_check_error.load());
  // The pool survives for a clean follow-up round.
  std::atomic<int> clean{0};
  pool.parallel_for(16, [&](std::size_t) {
    clean.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(clean.load(), 16);
}

TEST(ThreadPoolStress, ConcurrentSubmissionsBumpContentionTelemetry) {
#if !M3XU_TELEMETRY_ENABLED
  GTEST_SKIP() << "telemetry compiled out";
#else
  ThreadPool pool(2);
  const telemetry::Snapshot before = telemetry::snapshot();
  std::atomic<bool> inside{false};
  std::atomic<bool> release{false};
  std::thread waiter([&] {
    while (!inside.load(std::memory_order_acquire)) std::this_thread::yield();
    pool.parallel_for(8, 1, [](std::size_t) {});
    release.store(true, std::memory_order_release);
  });
  pool.parallel_for(8, [&](std::size_t i) {
    inside.store(true, std::memory_order_release);
    if (i == 0) {
      // Hold the pool briefly so the waiter reliably queues.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  waiter.join();
  const telemetry::Snapshot after = telemetry::snapshot();
  EXPECT_GE(after.counter_delta(before, "threadpool.submissions_queued"), 1u);
#endif
}

}  // namespace
}  // namespace m3xu
