// Tests for the quantum state-vector simulator on the FP32C engine:
// gate algebra, entanglement, unitarity, and the QFT.
#include <gtest/gtest.h>

#include <cmath>

#include "core/mxu.hpp"
#include "qsim/state_vector.hpp"

namespace m3xu::qsim {
namespace {

const core::M3xuEngine& engine() {
  static const core::M3xuEngine e;
  return e;
}

TEST(StateVector, InitialState) {
  StateVector sv(3, &engine());
  EXPECT_EQ(sv.dim(), 8u);
  EXPECT_NEAR(sv.probability(0), 1.0, 1e-12);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(StateVector, PauliXFlipsEachQubit) {
  for (int t = 0; t < 4; ++t) {
    StateVector sv(4, &engine());
    sv.apply(Gate::pauli_x(), t);
    EXPECT_NEAR(sv.probability(std::size_t{1} << t), 1.0, 1e-10) << t;
  }
}

TEST(StateVector, HadamardIsSelfInverse) {
  StateVector sv(5, &engine());
  sv.apply(Gate::hadamard(), 2);
  EXPECT_NEAR(sv.probability(0), 0.5, 1e-6);
  EXPECT_NEAR(sv.probability(4), 0.5, 1e-6);
  sv.apply(Gate::hadamard(), 2);
  EXPECT_NEAR(sv.probability(0), 1.0, 1e-6);
}

TEST(StateVector, GatesPreserveNorm) {
  StateVector sv(6, &engine());
  for (int q = 0; q < 6; ++q) sv.apply(Gate::hadamard(), q);
  for (int q = 0; q < 5; ++q) {
    sv.apply_controlled(Gate::phase(0.7 + q), q, q + 1);
  }
  for (int q = 0; q < 6; q += 2) sv.apply(Gate::pauli_z(), q);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-5);
}

TEST(StateVector, GhzStateViaCnotChain) {
  const int n = 8;
  StateVector sv(n, &engine());
  sv.apply(Gate::hadamard(), 0);
  for (int q = 0; q + 1 < n; ++q) {
    sv.apply_controlled(Gate::pauli_x(), q, q + 1);  // CNOT
  }
  EXPECT_NEAR(sv.probability(0), 0.5, 1e-5);
  EXPECT_NEAR(sv.probability((std::size_t{1} << n) - 1), 0.5, 1e-5);
  double leakage = 0.0;
  for (std::size_t b = 1; b + 1 < sv.dim(); ++b) leakage += sv.probability(b);
  EXPECT_NEAR(leakage, 0.0, 1e-8);
}

TEST(StateVector, ControlledGateIsIdentityWhenControlIsZero) {
  StateVector sv(3, &engine());
  sv.reset(0b001);  // control qubit 1 is |0>
  sv.apply_controlled(Gate::pauli_x(), 1, 2);
  EXPECT_NEAR(sv.probability(0b001), 1.0, 1e-10);
  sv.reset(0b010);  // control set
  sv.apply_controlled(Gate::pauli_x(), 1, 2);
  EXPECT_NEAR(sv.probability(0b110), 1.0, 1e-10);
}

TEST(StateVector, QftOfBasisStateIsUniform) {
  const int n = 6;
  StateVector sv(n, &engine());
  sv.reset(13);
  sv.apply_qft();
  const double expect = 1.0 / (1 << n);
  for (std::size_t b = 0; b < sv.dim(); ++b) {
    EXPECT_NEAR(sv.probability(b), expect, 1e-5) << b;
  }
  EXPECT_NEAR(sv.norm(), 1.0, 1e-5);
}

TEST(StateVector, QftPhasesMatchDft) {
  // QFT(|x>) amplitudes are w^(x*y)/sqrt(N) up to the QFT's
  // bit-reversed output ordering: check against the DFT with the
  // output index bit-reversed.
  const int n = 4;
  const int dim = 1 << n;
  const int x = 5;
  StateVector sv(n, &engine());
  sv.reset(x);
  sv.apply_qft();
  auto bitrev = [&](int v) {
    int r = 0;
    for (int i = 0; i < n; ++i) r |= ((v >> i) & 1) << (n - 1 - i);
    return r;
  };
  for (int y = 0; y < dim; ++y) {
    const double ang = 2.0 * M_PI * x * y / dim;
    const std::complex<double> expect(std::cos(ang) / std::sqrt(dim),
                                      std::sin(ang) / std::sqrt(dim));
    const std::complex<double> got(sv.amplitude(bitrev(y)));
    EXPECT_NEAR(std::abs(got - expect), 0.0, 1e-5) << y;
  }
}

TEST(StateVector, PhaseGateComposition) {
  // phase(a) then phase(b) == phase(a+b) on the |1> component.
  StateVector sv(1, &engine());
  sv.apply(Gate::hadamard(), 0);
  sv.apply(Gate::phase(0.4), 0);
  sv.apply(Gate::phase(0.9), 0);
  StateVector ref(1, &engine());
  ref.apply(Gate::hadamard(), 0);
  ref.apply(Gate::phase(1.3), 0);
  EXPECT_NEAR(std::abs(std::complex<double>(sv.amplitude(1)) -
                       std::complex<double>(ref.amplitude(1))),
              0.0, 1e-6);
}

}  // namespace
}  // namespace m3xu::qsim
