// Tests for the BLAS-style entry points (op(A), op(B), alpha/beta).
#include <gtest/gtest.h>

#include <complex>

#include "common/rng.hpp"
#include "gemm/blas.hpp"
#include "gemm/reference.hpp"

namespace m3xu::gemm {
namespace {

Matrix<float> random_matrix(int r, int c, std::uint64_t seed) {
  Matrix<float> m(r, c);
  Rng rng(seed);
  fill_random(m, rng);
  return m;
}

TEST(BlasSgemm, PlainMatchesRunSgemm) {
  const core::M3xuEngine engine;
  const auto a = random_matrix(24, 40, 801);
  const auto b = random_matrix(40, 16, 802);
  Matrix<float> c1(24, 16), c2(24, 16);
  c1.fill(0.0f);
  c2.fill(0.0f);
  blas_sgemm({}, SgemmKernel::kM3xu, engine, a, b, c1);
  run_sgemm(SgemmKernel::kM3xu, engine, a, b, c2);
  for (int i = 0; i < 24; ++i) {
    for (int j = 0; j < 16; ++j) {
      EXPECT_EQ(bits_of(c1(i, j)), bits_of(c2(i, j)));
    }
  }
}

TEST(BlasSgemm, TransposedOperands) {
  const core::M3xuEngine engine;
  // op(A) = A^T: store A as k x m.
  const auto at = random_matrix(40, 24, 803);
  const auto b = random_matrix(40, 16, 804);
  Matrix<float> c(24, 16);
  c.fill(0.0f);
  BlasParams p;
  p.transa = Trans::kT;
  p.beta = 0.0f;
  blas_sgemm(p, SgemmKernel::kM3xu, engine, at, b, c);
  // Reference with the explicit transpose.
  Matrix<double> ref(24, 16);
  ref.fill(0.0);
  Matrix<double> a(24, 40);
  for (int i = 0; i < 24; ++i) {
    for (int j = 0; j < 40; ++j) a(i, j) = at(j, i);
  }
  ref_dgemm(a, widen(b), ref);
  EXPECT_LT(compare(c, ref).mean_rel, 1e-5);
}

TEST(BlasSgemm, AlphaBetaEpilogue) {
  const core::M3xuEngine engine;
  const auto a = random_matrix(8, 8, 805);
  const auto b = random_matrix(8, 8, 806);
  Matrix<float> c(8, 8);
  c.fill(2.0f);
  BlasParams p;
  p.alpha = 0.5f;
  p.beta = -1.0f;
  blas_sgemm(p, SgemmKernel::kM3xu, engine, a, b, c);
  // Cross-check one element against the exact product.
  Matrix<double> exact(8, 8);
  exact.fill(0.0);
  exact_gemm(a, b, exact);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      const double expected = 0.5 * exact(i, j) - 2.0;
      EXPECT_NEAR(c(i, j), expected, 1e-6 * std::fabs(expected) + 1e-5);
    }
  }
}

TEST(BlasSgemm, BetaZeroIgnoresGarbageC) {
  const core::M3xuEngine engine;
  const auto a = random_matrix(6, 6, 807);
  const auto b = random_matrix(6, 6, 808);
  Matrix<float> c(6, 6);
  c.fill(std::numeric_limits<float>::quiet_NaN());  // garbage C
  BlasParams p;
  p.beta = 0.0f;
  blas_sgemm(p, SgemmKernel::kSimt, engine, a, b, c);
  Matrix<double> ref(6, 6);
  ref.fill(0.0);
  ref_dgemm(widen(a), widen(b), ref);
  EXPECT_LT(compare(c, ref).mean_rel, 1e-5);
}

TEST(BlasCgemm, ConjugateTranspose) {
  const core::M3xuEngine engine;
  Rng rng(809);
  const int m = 10, n = 8, k = 12;
  Matrix<std::complex<float>> ah(k, m), b(k, n), c(m, n);
  fill_random(ah, rng);
  fill_random(b, rng);
  c.fill({});
  BlasParamsC p;
  p.transa = Trans::kC;
  p.beta = {0.0f, 0.0f};
  blas_cgemm(p, CgemmKernel::kM3xu, engine, ah, b, c);
  Matrix<std::complex<double>> ref(m, n);
  ref.fill({});
  Matrix<std::complex<double>> a(m, k);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < k; ++j) {
      a(i, j) = std::conj(std::complex<double>(ah(j, i)));
    }
  }
  ref_zgemm(a, widen(b), ref);
  EXPECT_LT(compare(c, ref).max_abs, 1e-3);
}

TEST(BlasCgemm, ComplexAlphaRotates) {
  const core::M3xuEngine engine;
  Matrix<std::complex<float>> a(1, 1), b(1, 1), c(1, 1);
  a(0, 0) = {2.0f, 0.0f};
  b(0, 0) = {3.0f, 0.0f};
  c(0, 0) = {0.0f, 0.0f};
  BlasParamsC p;
  p.alpha = {0.0f, 1.0f};  // multiply by i
  blas_cgemm(p, CgemmKernel::kM3xu, engine, a, b, c);
  EXPECT_NEAR(c(0, 0).real(), 0.0, 1e-6);
  EXPECT_NEAR(c(0, 0).imag(), 6.0, 1e-6);
}

TEST(BlasBatched, StridedBatchesMatchIndividualGemms) {
  const core::M3xuEngine engine;
  Rng rng(816);
  const int m = 12, n = 10, k = 14, batches = 5;
  std::vector<float> a(batches * m * k), b(batches * k * n),
      c(batches * m * n), ref(batches * m * n);
  for (auto& v : a) v = rng.scaled_float();
  for (auto& v : b) v = rng.scaled_float();
  for (auto& v : c) v = rng.scaled_float();
  ref = c;
  blas_sgemm_strided_batched(SgemmKernel::kM3xu, engine, m, n, k, a.data(),
                             m * k, b.data(), k * n, c.data(), m * n,
                             batches);
  for (int i = 0; i < batches; ++i) {
    engine.gemm_fp32(m, n, k, a.data() + i * m * k, k, b.data() + i * k * n,
                     n, ref.data() + i * m * n, n);
  }
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_EQ(bits_of(c[i]), bits_of(ref[i])) << i;
  }
}

TEST(BlasBatched, ComplexBatchesAndOverlapFreeStrides) {
  const core::M3xuEngine engine;
  Rng rng(817);
  using C = std::complex<float>;
  const int m = 4, n = 4, k = 6, batches = 3;
  // Strides larger than the matrix sizes leave gaps that must stay
  // untouched.
  const long sa = m * k + 5, sb = k * n + 3, sc = m * n + 7;
  std::vector<C> a(batches * sa, C(-9.0f, -9.0f)),
      b(batches * sb, C(-9.0f, -9.0f)), c(batches * sc, C(-9.0f, -9.0f));
  for (int i = 0; i < batches; ++i) {
    for (int j = 0; j < m * k; ++j) {
      a[i * sa + j] = C(rng.scaled_float(), rng.scaled_float());
    }
    for (int j = 0; j < k * n; ++j) {
      b[i * sb + j] = C(rng.scaled_float(), rng.scaled_float());
    }
    for (int j = 0; j < m * n; ++j) c[i * sc + j] = C{};
  }
  blas_cgemm_strided_batched(CgemmKernel::kM3xu, engine, m, n, k, a.data(),
                             sa, b.data(), sb, c.data(), sc, batches);
  for (int i = 0; i < batches; ++i) {
    // Gap elements untouched.
    for (long g = m * n; g < sc; ++g) {
      EXPECT_EQ(c[i * sc + g], C(-9.0f, -9.0f));
    }
    // Values match a direct per-batch product.
    std::vector<C> ref(m * n, C{});
    engine.gemm_fp32c(m, n, k, a.data() + i * sa, k, b.data() + i * sb, n,
                      ref.data(), n);
    for (int j = 0; j < m * n; ++j) {
      EXPECT_EQ(c[i * sc + j], ref[j]) << i << "," << j;
    }
  }
}

TEST(BlasBatched, NonNativeKernelsWork) {
  const core::M3xuEngine engine;
  Rng rng(818);
  const int m = 8, n = 8, k = 8, batches = 2;
  std::vector<float> a(batches * m * k), b(batches * k * n),
      c(batches * m * n, 0.0f);
  for (auto& v : a) v = rng.uniform(0.25f, 1.0f);
  for (auto& v : b) v = rng.uniform(0.25f, 1.0f);
  blas_sgemm_strided_batched(SgemmKernel::kSimt, engine, m, n, k, a.data(),
                             m * k, b.data(), k * n, c.data(), m * n,
                             batches);
  // Spot check one element per batch against a double dot.
  for (int i = 0; i < batches; ++i) {
    double ref = 0.0;
    for (int kk = 0; kk < k; ++kk) {
      ref += static_cast<double>(a[i * m * k + kk]) * b[i * k * n + kk * n];
    }
    EXPECT_NEAR(c[i * m * n], ref, 1e-5);
  }
}

TEST(BlasDeathTest, ShapeMismatchesAreRejected) {
  const core::M3xuEngine engine;
  const auto a = random_matrix(4, 8, 810);
  const auto b = random_matrix(9, 4, 811);  // inner dims disagree
  Matrix<float> c(4, 4);
  c.fill(0.0f);
  EXPECT_DEATH(blas_sgemm({}, SgemmKernel::kM3xu, engine, a, b, c), "");
  // Transposing B fixes the inner dim but breaks the output shape.
  BlasParams p;
  p.transb = Trans::kT;
  Matrix<float> bad_c(4, 5);
  bad_c.fill(0.0f);
  EXPECT_DEATH(blas_sgemm(p, SgemmKernel::kM3xu, engine, a, b, bad_c), "");
}

TEST(BlasDeathTest, RealEntryPointRejectsConjugate) {
  const core::M3xuEngine engine;
  const auto a = random_matrix(4, 4, 812);
  const auto b = random_matrix(4, 4, 813);
  Matrix<float> c(4, 4);
  c.fill(0.0f);
  BlasParams p;
  p.transa = Trans::kC;
  EXPECT_DEATH(blas_sgemm(p, SgemmKernel::kSimt, engine, a, b, c), "");
}

TEST(BlasDeathTest, BatchedRejectsUndersizedOrNegativeStrides) {
  // The packed-layout contract (blas.hpp): batches are dense m*k / k*n /
  // m*n blocks, so with batch_count > 1 any stride below those floors
  // (or negative) would read one batch's tail as the next batch's head.
  const core::M3xuEngine engine;
  const int m = 4, n = 5, k = 6, batches = 2;
  std::vector<float> a(batches * m * k, 0.5f), b(batches * k * n, 0.25f);
  std::vector<float> c(batches * m * n, 0.0f);
  const auto run = [&](long sa, long sb, long sc) {
    blas_sgemm_strided_batched(SgemmKernel::kM3xu, engine, m, n, k, a.data(),
                               sa, b.data(), sb, c.data(), sc, batches);
  };
  EXPECT_DEATH(run(m * k - 1, k * n, m * n), "stride_a");
  EXPECT_DEATH(run(m * k, k * n - 1, m * n), "stride_b");
  EXPECT_DEATH(run(m * k, k * n, m * n - 1), "stride_c");
  EXPECT_DEATH(run(-1, k * n, m * n), "non-negative");

  using C = std::complex<float>;
  std::vector<C> ca(batches * m * k), cb(batches * k * n), cc(batches * m * n);
  EXPECT_DEATH(
      blas_cgemm_strided_batched(CgemmKernel::kM3xu, engine, m, n, k,
                                 ca.data(), m * k, cb.data(), -2, cc.data(),
                                 m * n, batches),
      "non-negative");
  EXPECT_DEATH(
      blas_cgemm_strided_batched(CgemmKernel::kM3xu, engine, m, n, k,
                                 ca.data(), m * k, cb.data(), k * n,
                                 cc.data(), m * n - 1, batches),
      "stride_c");
  // batch_count == 1 never strides, so the floors do not apply.
  blas_sgemm_strided_batched(SgemmKernel::kM3xu, engine, m, n, k, a.data(),
                             0, b.data(), 0, c.data(), 0, 1);
}

TEST(BlasSgemm, DoubleTransposeIsPlain) {
  const core::M3xuEngine engine;
  const auto a = random_matrix(12, 20, 814);
  const auto b = random_matrix(20, 8, 815);
  Matrix<float> plain(12, 8), twisted(12, 8);
  plain.fill(0.0f);
  twisted.fill(0.0f);
  blas_sgemm({}, SgemmKernel::kM3xu, engine, a, b, plain);
  // op(A^T) with transa=T == A.
  Matrix<float> at(20, 12);
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < 20; ++j) at(j, i) = a(i, j);
  }
  BlasParams p;
  p.transa = Trans::kT;
  blas_sgemm(p, SgemmKernel::kM3xu, engine, at, b, twisted);
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_EQ(bits_of(plain(i, j)), bits_of(twisted(i, j)));
    }
  }
}

}  // namespace
}  // namespace m3xu::gemm
